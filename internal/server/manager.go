package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"cvcp/internal/dataset"
	"cvcp/internal/runner"
)

// Sentinel errors of the job manager; handlers map them to structured API
// errors.
var (
	// ErrQueueFull rejects a submission when the bounded FIFO queue is at
	// capacity.
	ErrQueueFull = errors.New("server: job queue is full")
	// ErrDraining rejects submissions after Shutdown began.
	ErrDraining = errors.New("server: shutting down, not accepting jobs")
	// ErrNotFound marks an unknown (or evicted) job id.
	ErrNotFound = errors.New("server: no such job")
)

func errUnknownAlgorithm(name string) error {
	return fmt.Errorf("server: unknown algorithm %q (have %s)", name, strings.Join(algorithmNames(), ", "))
}

// Manager owns the job queue, the executors and the in-memory job store.
type Manager struct {
	cfg     Config
	limiter *runner.Limiter
	queue   chan *Job

	baseCtx    context.Context
	baseCancel context.CancelFunc
	execWG     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for listing
	finished []string // finish order, for eviction
	nextID   int
	draining bool
}

// NewManager returns a Manager with its executors started.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		limiter:    runner.NewLimiter(cfg.WorkerBudget),
		queue:      make(chan *Job, cfg.QueueDepth),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
	}
	// The executors are the only goroutines the manager owns: a fixed pool
	// started once, consuming the FIFO queue. All per-job clustering work
	// dispatches through internal/runner under the shared Limiter.
	for i := 0; i < cfg.MaxRunningJobs; i++ {
		m.execWG.Add(1)
		go m.executor()
	}
	return m
}

// Config returns the effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

func (m *Manager) executor() {
	defer m.execWG.Done()
	for j := range m.queue {
		if j.claimRun() {
			j.execute(m.limiter, m.cfg.WorkerBudget)
		}
		// Whether the job ran or was cancelled while queued, it is
		// finished now: enter it into the eviction window.
		m.retire(j)
	}
}

// retire records a finished job and evicts the oldest finished jobs beyond
// the retention window.
func (m *Manager) retire(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.finished = append(m.finished, j.id)
	for len(m.finished) > m.cfg.RetainFinished {
		evict := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.jobs, evict)
		for i, id := range m.order {
			if id == evict {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
}

// Submit validates nothing (the caller did) and enqueues a new job for ds
// under spec. It fails with ErrDraining after Shutdown began and with
// ErrQueueFull when the FIFO queue is at capacity. Note that a job
// cancelled while queued keeps its queue slot until an executor pops and
// skips it (a skip is instant — no clustering runs), so under sustained
// load the queue can briefly report full while holding cancelled entries.
func (m *Manager) Submit(spec Spec, ds *dataset.Dataset) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	m.nextID++
	id := fmt.Sprintf("job-%06d", m.nextID)
	j := newJob(id, spec, ds, m.baseCtx)
	select {
	case m.queue <- j:
	default:
		m.nextID--
		j.cancel()
		return nil, ErrQueueFull
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	return j, nil
}

// Get returns the job with the given id, or ErrNotFound (also for evicted
// jobs).
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Len reports how many jobs are resident in the store.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.order)
}

// List returns every resident job in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel cancels the job with the given id: a queued job becomes cancelled
// immediately, a running job's context is cancelled and the job finishes as
// cancelled once the engine stops. Cancelling a finished job is a no-op.
// The returned status is the job's state after the request.
func (m *Manager) Cancel(id string) (Status, error) {
	j, err := m.Get(id)
	if err != nil {
		return "", err
	}
	return j.requestCancel(), nil
}

// Shutdown drains the manager: no new submissions are accepted, queued and
// running jobs are given until ctx expires to finish, then all remaining
// jobs are force-cancelled. It returns ctx.Err() when the drain deadline
// was hit, nil on a clean drain. Shutdown is idempotent.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	if !already {
		close(m.queue)
	}

	done := make(chan struct{})
	go func() {
		m.execWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.baseCancel() // force-cancel every job still executing or queued
		<-done
		return ctx.Err()
	}
}
