package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"cvcp/internal/dataset"
	"cvcp/internal/runner"
	"cvcp/internal/store"
)

// Sentinel errors of the job manager; handlers map them to structured API
// errors.
var (
	// ErrQueueFull rejects a submission when the bounded FIFO queue is at
	// capacity (a batch needs one free slot per dataset).
	ErrQueueFull = errors.New("server: job queue is full")
	// ErrTenantQuota rejects a submission when the submitting tenant's
	// max-queued quota is exhausted (the global queue may still have
	// room — the quota is per API key).
	ErrTenantQuota = errors.New("server: tenant queue quota exceeded")
	// ErrDraining rejects submissions after Shutdown began.
	ErrDraining = errors.New("server: shutting down, not accepting jobs")
	// ErrNotFound marks an unknown (or evicted) job or batch id.
	ErrNotFound = errors.New("server: no such job")
)

func errUnknownAlgorithm(name string) error {
	return fmt.Errorf("server: unknown algorithm %q (have %s)", name, strings.Join(algorithmNames(), ", "))
}

// Manager owns the job queue, the executors and the live job set. Job
// persistence is delegated to a store.Store: every lifecycle transition is
// mirrored into it, listings page through it, and at construction time the
// manager replays whatever the store holds — finished jobs come back as
// resident results, jobs a previous process was killed around are
// re-queued and run again (deterministic seeding makes the re-run select
// the same parameter). With the default in-memory store the manager
// behaves exactly like the pre-store versions; with a file store the
// service survives restarts.
type Manager struct {
	cfg     Config
	store   store.Store
	limiter *runner.Limiter

	baseCtx    context.Context
	baseCancel context.CancelFunc
	execWG     sync.WaitGroup

	// tenants indexes Config.Tenants by name; submissions under an
	// unconfigured (or empty) tenant name fall back to weight 1 with no
	// per-tenant quota.
	tenants map[string]Tenant

	mu         sync.Mutex
	cond       *sync.Cond // signals: the queue grew, or draining began
	queue      *fairQueue // the pending queue; cancelled jobs are removed eagerly
	jobs       map[string]*Job
	order      []string // ID (= submission) order, for List
	finished   []string // finish order, for eviction
	batches    map[string]*batchState
	nextID     int
	nextBatch  int
	reserved   int            // queue slots held by submissions persisting outside the lock
	reservedBy map[string]int // reserved, per tenant (for quota accounting)
	draining   bool

	// nextDataset mints dataset IDs; guarded by mu like the job counters.
	nextDataset int

	// dsMu guards the dataset registry. It is ordered after mu (never
	// held while taking mu) and never held across store writes.
	dsMu     sync.Mutex
	datasets map[string]*managedDataset

	// metaMu serializes counter high-water-mark writes so a stale
	// snapshot can never overwrite a newer one (see applyEviction).
	metaMu sync.Mutex
}

// batchState tracks one batch's membership. Jobs evicted from the store
// leave the ID in place so the batch view can report them as evicted.
type batchState struct {
	id      string
	created time.Time
	jobIDs  []string
	evicted int
}

// NewManager returns a Manager with its executors started. Any records in
// cfg.Store are replayed first: terminal records become resident finished
// jobs, non-terminal records are re-queued ahead of new submissions.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:        cfg,
		store:      cfg.Store,
		limiter:    runner.NewLimiter(cfg.WorkerBudget),
		baseCtx:    ctx,
		baseCancel: cancel,
		tenants:    map[string]Tenant{},
		queue:      newFairQueue(),
		jobs:       map[string]*Job{},
		batches:    map[string]*batchState{},
		reservedBy: map[string]int{},
		datasets:   map[string]*managedDataset{},
	}
	for _, t := range cfg.Tenants {
		m.tenants[t.Name] = t
	}
	m.cond = sync.NewCond(&m.mu)
	m.replay()
	// The executors are the only goroutines the manager owns: a fixed pool
	// started once, consuming the FIFO queue. All per-job clustering work
	// dispatches through internal/runner under the shared Limiter.
	for i := 0; i < cfg.MaxRunningJobs; i++ {
		m.execWG.Add(1)
		go m.executor()
	}
	return m
}

// Config returns the effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// tenantFor resolves a tenant name to its configuration; unconfigured
// names (including the anonymous "") get weight 1 and no quota.
func (m *Manager) tenantFor(name string) Tenant {
	if t, ok := m.tenants[name]; ok {
		return t
	}
	return Tenant{Name: name, Weight: 1}
}

// enqueueLocked puts j into the fair queue under its tenant's weight.
// Callers hold mu.
func (m *Manager) enqueueLocked(j *Job) {
	m.queue.push(j.spec.Tenant, m.tenantFor(j.spec.Tenant).Weight, j)
	m.queueGaugeLocked()
}

// replay loads every record from the store before the executors start:
// terminal records resurrect in place, interrupted ones re-enter the
// queue, ID counters resume past everything seen, and batch membership is
// rebuilt from the records' batch fields. Runs before any concurrency
// exists, so it takes no locks.
func (m *Manager) replay() {
	cursor := ""
	for {
		recs, next, err := m.store.List(cursor, 256)
		if err != nil {
			return // an unreadable store serves as empty; Submit will surface Put errors
		}
		for _, rec := range recs {
			m.restore(rec)
		}
		if next == "" {
			break
		}
		cursor = next
	}
	m.applyEviction(m.trimFinishedLocked())
}

// appendEvents mirrors published job events into the store's event log
// (jobEventLog's write half). Failures are swallowed like persist's: the
// live stream is still served from memory, and the log degrades to a
// shorter replay instead of failing the job.
func (m *Manager) appendEvents(jobID string, evs []Event) {
	if len(evs) == 0 {
		return
	}
	out := make([]store.Event, 0, len(evs))
	for _, ev := range evs {
		data, err := json.Marshal(ev)
		if err != nil {
			continue
		}
		out = append(out, store.Event{Seq: ev.Seq, Data: data})
	}
	_ = m.store.AppendEvents(jobID, out)
}

// eventsSince reads the job's persisted events with Seq > afterSeq back
// out of the store (jobEventLog's read half). Entries that fail to
// decode are skipped.
func (m *Manager) eventsSince(jobID string, afterSeq int) []Event {
	recs, err := m.store.EventsSince(jobID, afterSeq)
	if err != nil {
		return nil
	}
	evs := make([]Event, 0, len(recs))
	for _, r := range recs {
		var ev Event
		if err := json.Unmarshal(r.Data, &ev); err != nil {
			continue
		}
		evs = append(evs, ev)
	}
	return evs
}

func (m *Manager) restore(rec store.Record) {
	if rec.ID == metaID {
		// The counter high-water mark: jobs evicted before the restart
		// may have held IDs above every surviving record.
		var meta metaRecord
		if json.Unmarshal(rec.Spec, &meta) == nil {
			if meta.NextID > m.nextID {
				m.nextID = meta.NextID
			}
			if meta.NextBatch > m.nextBatch {
				m.nextBatch = meta.NextBatch
			}
			if meta.NextDataset > m.nextDataset {
				m.nextDataset = meta.NextDataset
			}
		}
		return
	}
	// Dataset records: metas sort before their row batches ("ds-" < "dsb-"),
	// so every batch replays into an already-restored registry entry. The
	// "dsb-" test must come first — "ds-" is its prefix too.
	if strings.HasPrefix(rec.ID, datasetBatchPrefix) {
		m.restoreDatasetRows(rec)
		return
	}
	if strings.HasPrefix(rec.ID, datasetPrefix) {
		m.restoreDatasetMeta(rec)
		return
	}
	if !strings.HasPrefix(rec.ID, "job-") {
		return // not a job record; ignore unknown reserved IDs
	}
	if n, ok := numericSuffix(rec.ID, "job-"); ok && n > m.nextID {
		m.nextID = n
	}
	if !Status(rec.Status).Terminal() {
		// List omits the dataset payload; an interrupted job needs it to
		// re-queue, so fetch the full record.
		if full, ok, err := m.store.Get(rec.ID); err == nil && ok {
			rec = full
		}
	}
	if n, ok := numericSuffix(rec.Batch, "batch-"); ok && n > m.nextBatch {
		m.nextBatch = n
	}
	j, requeue := jobFromRecord(rec, m.baseCtx, m, m.eventsSince(rec.ID, 0))
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	if j.batch != "" {
		b := m.batches[j.batch]
		if b == nil {
			b = &batchState{id: j.batch, created: j.created}
			m.batches[j.batch] = b
		}
		b.jobIDs = append(b.jobIDs, j.id)
		if b.created.After(j.created) {
			b.created = j.created
		}
	}
	if requeue {
		// Back to the queue; persist the reset (a "running" record becomes
		// "queued" again so a second restart replays consistently).
		m.enqueueLocked(j)
		m.persist(j)
		return
	}
	if j.Status().Terminal() {
		m.finished = append(m.finished, j.id)
		if Status(rec.Status) != j.Status() {
			m.persist(j) // a corrupt record was re-marked failed
		}
	}
}

func (m *Manager) executor() {
	defer m.execWG.Done()
	for {
		m.mu.Lock()
		for m.queue.len() == 0 && !m.draining {
			m.cond.Wait()
		}
		if m.queue.len() == 0 { // draining and nothing left
			m.mu.Unlock()
			return
		}
		j := m.queue.pop()
		m.queueGaugeLocked()
		m.mu.Unlock()

		if j.claimRun() {
			m.persist(j) // running
			mJobsRunning.Inc()
			m.runJob(j)
			mJobsRunning.Dec()
		}
		// Whether the job ran or was cancelled in the instant between the
		// pop and the claim, it is terminal now: persist the final state
		// and enter it into the eviction window.
		m.persist(j)
		m.retire(j)
	}
}

// persist mirrors the job's current state into the store. Failures after
// submission are swallowed: the live job is still served from memory, and
// the next transition retries.
func (m *Manager) persist(j *Job) {
	_ = m.store.Put(j.record())
}

// retire records a finished job and evicts the oldest finished jobs beyond
// the retention window. The store writes of an eviction happen outside the
// lock.
func (m *Manager) retire(j *Job) {
	v := j.View()
	mJobsCompleted.With(string(v.Status)).Inc()
	if v.Finished != nil {
		mJobDuration.Observe(v.Finished.Sub(v.Created).Seconds())
	}
	m.mu.Lock()
	m.finished = append(m.finished, j.id)
	evicted, meta := m.trimFinishedLocked()
	m.mu.Unlock()
	m.applyEviction(evicted, meta)
}

// trimFinishedLocked evicts beyond-retention finished jobs from the
// in-memory state and returns the record IDs to delete from the store,
// plus whether the counter high-water mark needs (re)writing. Callers
// hold mu and pass the results to applyEviction after unlocking.
func (m *Manager) trimFinishedLocked() (evicted []string, writeMeta bool) {
	for len(m.finished) > m.cfg.RetainFinished {
		evict := m.finished[0]
		m.finished = m.finished[1:]
		if j := m.jobs[evict]; j != nil && j.batch != "" {
			if b := m.batches[j.batch]; b != nil {
				b.evicted++
				if b.evicted == len(b.jobIDs) {
					delete(m.batches, j.batch)
				}
			}
		}
		delete(m.jobs, evict)
		for i, id := range m.order {
			if id == evict {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		evicted = append(evicted, evict)
	}
	return evicted, len(evicted) > 0
}

// applyEviction performs the store writes of an eviction decided by
// trimFinishedLocked: the counter high-water mark FIRST (a crash between
// the writes must never leave deleted IDs uncovered), then the record
// deletes (each of which also drops the job's event log). Meta writes
// serialize under metaMu with counters read fresh at write time — the
// counters only grow and every deletable ID was minted before any write,
// so the last writer always persists a covering value.
func (m *Manager) applyEviction(evicted []string, writeMeta bool) {
	if writeMeta {
		m.metaMu.Lock()
		m.mu.Lock()
		spec, _ := json.Marshal(metaRecord{NextID: m.nextID, NextBatch: m.nextBatch, NextDataset: m.nextDataset})
		m.mu.Unlock()
		//cvcplint:ignore lockio metaMu exists to serialize exactly this meta write (last writer must persist a covering value); the manager's hot mutex m.mu is released above
		_ = m.store.Put(store.Record{ID: metaID, Status: "meta", Spec: spec})
		m.metaMu.Unlock()
	}
	for _, id := range evicted {
		_ = m.store.Delete(id)
	}
	mJobsEvicted.Add(uint64(len(evicted)))
}

// reserveLocked allocates n job IDs and holds n queue slots for a
// tenant's submission that will persist outside the lock. The caller
// holds mu. Beyond the global queue bound, a tenant with a configured
// MaxQueued quota is held to queued+reserved <= MaxQueued.
func (m *Manager) reserveLocked(tenant string, n int) ([]string, error) {
	if m.draining {
		return nil, ErrDraining
	}
	if m.queue.len()+m.reserved+n > m.cfg.QueueDepth {
		return nil, ErrQueueFull
	}
	if t := m.tenantFor(tenant); t.MaxQueued > 0 && m.queue.queued(tenant)+m.reservedBy[tenant]+n > t.MaxQueued {
		return nil, ErrTenantQuota
	}
	// Nine digits of zero padding: the store orders by lexicographic ID,
	// which must equal numeric order for the lifetime of a durable store
	// (the counters survive restarts), so the pad has to outlast it.
	ids := make([]string, n)
	for i := range ids {
		m.nextID++
		ids[i] = fmt.Sprintf("job-%09d", m.nextID)
	}
	m.reserved += n
	m.reservedBy[tenant] += n
	m.queueGaugeLocked()
	return ids, nil
}

// release returns n reserved queue slots after a failed submission. The
// consumed IDs stay consumed — gaps are harmless, reuse is not.
func (m *Manager) release(tenant string, n int) {
	m.mu.Lock()
	m.reserved -= n
	m.reservedBy[tenant] -= n
	m.queueGaugeLocked()
	m.mu.Unlock()
}

// publish exposes fully persisted jobs (and their batch, if any): they
// enter the job map, the listing order and the FIFO queue, and their
// reserved slots convert into real queue entries. If the manager started
// draining while the jobs were persisting, they are discarded instead and
// ErrDraining is returned — the drain may already have stopped the
// executors that would run them.
func (m *Manager) publish(jobs []*Job, b *batchState) error {
	m.mu.Lock()
	m.reserved -= len(jobs)
	for _, j := range jobs {
		m.reservedBy[j.spec.Tenant]--
	}
	if m.draining {
		m.queueGaugeLocked()
		m.mu.Unlock()
		for _, j := range jobs {
			m.discardPersisted(j)
		}
		return ErrDraining
	}
	for _, j := range jobs {
		m.jobs[j.id] = j
		i := sort.SearchStrings(m.order, j.id)
		m.order = append(m.order, "")
		copy(m.order[i+1:], m.order[i:])
		m.order[i] = j.id
		m.enqueueLocked(j)
	}
	if b != nil {
		m.batches[b.id] = b
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	return nil
}

// discardPersisted erases the durable trace — record and event log — of
// a job that never published (a rollback, a failed Put whose queued
// event already reached the log, or a drain that began mid-submission).
// If the delete fails too, a terminal cancelled record is written
// best-effort — a terminal record is never re-queued by a restart, so the
// job cannot run either way.
func (m *Manager) discardPersisted(j *Job) {
	j.requestCancel()
	if err := m.store.Delete(j.id); err != nil {
		_ = m.store.Put(j.record())
	}
}

// Submit validates nothing (the caller did) and enqueues a new job for ds
// under spec. It fails with ErrDraining after Shutdown began and with
// ErrQueueFull when the FIFO queue is at capacity. The job is durably
// persisted before it is visible or runnable; the expensive work
// (serialization, the store write and its fsync) happens outside the
// manager lock, so concurrent reads never stall behind a submission.
// Cancelling a queued job removes it from the queue immediately, so its
// slot frees without waiting for an executor.
func (m *Manager) Submit(spec Spec, ds *dataset.Dataset) (*Job, error) {
	blob := marshalDataset(ds)
	m.mu.Lock()
	ids, err := m.reserveLocked(spec.Tenant, 1)
	m.mu.Unlock()
	if err != nil {
		mJobsRejected.With(rejectReason(err)).Inc()
		return nil, err
	}
	j := newJob(ids[0], "", spec, ds, blob, m.baseCtx, m, nil, 0, false)
	if err := m.store.Put(j.record()); err != nil {
		m.release(spec.Tenant, 1)
		// Discard, don't just cancel: newJob already appended the queued
		// event to the store's log, and the consumed ID is never reused —
		// an orphaned event log would otherwise live in the store forever.
		m.discardPersisted(j)
		mJobsRejected.With("store_error").Inc()
		return nil, fmt.Errorf("server: persisting job: %w", err)
	}
	if err := m.publish([]*Job{j}, nil); err != nil {
		mJobsRejected.With(rejectReason(err)).Inc()
		return nil, err
	}
	mJobsSubmitted.Inc()
	return j, nil
}

// SubmitBatch enqueues one job per item under a fresh batch ID, all-or-
// nothing: the batch needs len(items) free queue slots or it fails with
// ErrQueueFull, and a persistence failure rolls back the jobs already
// persisted. Items run as independent jobs (each drawing on the shared
// worker budget), so a batch of N datasets yields exactly the N selections
// the individual submissions would.
func (m *Manager) SubmitBatch(items []BatchItem) (BatchView, error) {
	blobs := make([][]byte, len(items))
	for i, it := range items {
		blobs[i] = marshalDataset(it.Dataset)
	}
	// A batch arrives through one submission, so every item shares the
	// submitting tenant.
	tenant := ""
	if len(items) > 0 {
		tenant = items[0].Spec.Tenant
	}
	m.mu.Lock()
	ids, err := m.reserveLocked(tenant, len(items))
	if err != nil {
		m.mu.Unlock()
		mJobsRejected.With(rejectReason(err)).Inc()
		return BatchView{}, err
	}
	m.nextBatch++
	bid := fmt.Sprintf("batch-%09d", m.nextBatch)
	m.mu.Unlock()

	b := &batchState{id: bid, created: time.Now()}
	jobs := make([]*Job, 0, len(items))
	for i, it := range items {
		j := newJob(ids[i], bid, it.Spec, it.Dataset, blobs[i], m.baseCtx, m, nil, 0, false)
		if err := m.store.Put(j.record()); err != nil {
			// Roll the partial batch back so it never half-exists — the
			// failing job included: its record never landed, but its
			// queued event is already in the store's log.
			m.discardPersisted(j)
			for _, created := range jobs {
				m.discardPersisted(created)
			}
			m.release(tenant, len(items))
			mJobsRejected.With("store_error").Inc()
			return BatchView{}, fmt.Errorf("server: persisting job: %w", err)
		}
		jobs = append(jobs, j)
		b.jobIDs = append(b.jobIDs, j.id)
	}
	if err := m.publish(jobs, b); err != nil {
		mJobsRejected.With(rejectReason(err)).Inc()
		return BatchView{}, err
	}
	mJobsSubmitted.Add(uint64(len(jobs)))
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.batchViewLocked(b), nil
}

// Get returns the job with the given id, or ErrNotFound (also for evicted
// jobs).
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Len reports how many jobs are resident in the store.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.order)
}

// List returns every resident job in submission order.
func (m *Manager) List() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// ListPage returns up to limit job views with ID > cursor in submission
// order, plus the cursor for the next page ("" when exhausted). limit <= 0
// means no limit. The page walks the store (the source of listing order);
// resident jobs contribute their live view, records without a resident job
// (evicted mid-listing) fall back to the persisted snapshot. Reserved
// records (the counter high-water mark) are filtered out and refilled, so
// pages are never short of limit while more jobs exist.
func (m *Manager) ListPage(cursor string, limit int) ([]JobView, string, error) {
	views := make([]JobView, 0, max(limit, 0))
	for {
		want := limit
		if limit > 0 {
			want = limit - len(views)
		}
		recs, next, err := m.store.List(cursor, want)
		if err != nil {
			return nil, "", err
		}
		m.mu.Lock()
		for _, rec := range recs {
			if !strings.HasPrefix(rec.ID, "job-") {
				continue // reserved records (e.g. the counter high-water mark)
			}
			if j, ok := m.jobs[rec.ID]; ok {
				views = append(views, j.View())
			} else {
				views = append(views, viewFromRecord(rec))
			}
		}
		m.mu.Unlock()
		cursor = next
		if next == "" || limit <= 0 || len(views) >= limit {
			return views, next, nil
		}
		// A filtered reserved record left the page short: fetch more.
	}
}

// GetBatch returns the aggregate view of a batch, or ErrNotFound.
func (m *Manager) GetBatch(id string) (BatchView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.batches[id]
	if !ok {
		return BatchView{}, ErrNotFound
	}
	return m.batchViewLocked(b), nil
}

func (m *Manager) batchViewLocked(b *batchState) BatchView {
	v := BatchView{
		ID:      b.id,
		Created: b.created,
		Total:   len(b.jobIDs),
		Evicted: b.evicted,
		Counts:  map[Status]int{},
		Done:    true,
	}
	for _, id := range b.jobIDs {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		jv := j.View()
		v.Counts[jv.Status]++
		if !jv.Status.Terminal() {
			v.Done = false
		}
		v.Jobs = append(v.Jobs, jv)
	}
	return v
}

// Cancel cancels the job with the given id: a queued job is removed from
// the FIFO queue and finalized immediately (its queue slot frees at once),
// a running job's context is cancelled and the job finishes as cancelled
// once the engine stops. Cancelling a finished job is a no-op. The
// returned status is the job's state after the request.
func (m *Manager) Cancel(id string) (Status, error) {
	j, err := m.Get(id)
	if err != nil {
		return "", err
	}
	st := j.requestCancel()
	if st == StatusCancelled {
		// If the job was still waiting in the queue, pull it out now: no
		// executor should spend a pop on it, and its slot frees
		// immediately. Exactly one of this path and the executor (which
		// pops before we got here) retires the job.
		m.mu.Lock()
		removed := m.queue.remove(j)
		if removed {
			m.queueGaugeLocked()
		}
		m.mu.Unlock()
		if removed {
			m.persist(j)
			m.retire(j)
		}
	}
	return st, nil
}

// Shutdown drains the manager: no new submissions are accepted, queued and
// running jobs are given until ctx expires to finish, then all remaining
// jobs are force-cancelled. It returns ctx.Err() when the drain deadline
// was hit, nil on a clean drain. Shutdown is idempotent. The store is not
// closed — its owner (e.g. cmd/cvcpd) closes it after the drain, so the
// final job states are compacted into the snapshot.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.execWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.baseCancel() // force-cancel every job still executing or queued
		<-done
		return ctx.Err()
	}
}
