package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"cvcp/internal/dataset"
)

// apiError is the structured error body of every non-2xx response:
// {"error":{"code":"...","message":"..."}}.
type apiError struct {
	status  int
	Code    string `json:"code"`
	Message string `json:"message"`
}

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, Code: code, Message: fmt.Sprintf(format, args...)}
}

// jobRequest is the JSON submission document.
type jobRequest struct {
	Name            string           `json:"name"`
	CSV             string           `json:"csv"`
	HasLabel        bool             `json:"has_label"`
	DatasetID       string           `json:"dataset_id"`
	DatasetVersion  int              `json:"dataset_version"`
	Algorithm       string           `json:"algorithm"`
	Algorithms      []string         `json:"algorithms"`
	Scorer          string           `json:"scorer"`
	BootstrapRounds int              `json:"bootstrap_rounds"`
	Params          []int            `json:"params"`
	ParamMin        int              `json:"param_min"`
	ParamMax        int              `json:"param_max"`
	Folds           int              `json:"folds"`
	Seed            int64            `json:"seed"`
	Matrix32        bool             `json:"matrix32"`
	Eps             float64          `json:"eps"`
	LabelFraction   float64          `json:"label_fraction"`
	Constraints     []constraintJSON `json:"constraints"`
}

type constraintJSON struct {
	A    int    `json:"a"`
	B    int    `json:"b"`
	Link string `json:"link"` // "ml" (must-link) or "cl" (cannot-link)
}

// parseSubmission extracts a job spec and dataset from a POST /v1/jobs
// request. Three request shapes are accepted:
//
//   - application/json: a jobRequest document with the CSV inline;
//   - multipart/form-data: a "dataset" file part plus option form fields;
//   - anything else (e.g. text/csv): the body is the CSV, options come
//     from the URL query.
//
// maxBody also caps the CSV payload itself via dataset.ReadCSVLimited, so
// an oversized upload is reported as too_large rather than a parse error.
func parseSubmission(r *http.Request, maxBody int64) (Spec, *dataset.Dataset, *apiError) {
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "application/json"):
		return parseJSONSubmission(r, maxBody)
	case strings.HasPrefix(ct, "multipart/form-data"):
		return parseMultipartSubmission(r, maxBody)
	default:
		return parseRawSubmission(r, maxBody)
	}
}

func parseJSONSubmission(r *http.Request, maxBody int64) (Spec, *dataset.Dataset, *apiError) {
	var req jobRequest
	if apiErr := decodeStrictJSON(r.Body, &req); apiErr != nil {
		return Spec{}, nil, apiErr
	}
	if req.DatasetID != "" {
		// Dataset-referencing job: the rows come from a registered
		// versioned dataset, not the request. The handler resolves the
		// snapshot (pinning the version) and runs finishSpec against it;
		// this parse only assembles the options.
		if req.CSV != "" {
			return Spec{}, nil, badRequest("invalid_request", `"csv" and "dataset_id" are mutually exclusive`)
		}
		if req.HasLabel {
			return Spec{}, nil, badRequest("invalid_request", `"has_label" is a property of the registered dataset, not of a "dataset_id" job`)
		}
		spec, apiErr := specFromRequest(req)
		if apiErr != nil {
			return Spec{}, nil, apiErr
		}
		return spec, nil, nil
	}
	if req.DatasetVersion != 0 {
		return Spec{}, nil, badRequest("invalid_request", `"dataset_version" requires "dataset_id"`)
	}
	if req.CSV == "" {
		return Spec{}, nil, badRequest("invalid_request", `JSON submissions require a non-empty "csv" field`)
	}
	spec, apiErr := specFromRequest(req)
	if apiErr != nil {
		return Spec{}, nil, apiErr
	}
	ds, apiErr := parseCSV(req.Name, strings.NewReader(req.CSV), req.HasLabel, maxBody)
	if apiErr != nil {
		return Spec{}, nil, apiErr
	}
	return finishSpec(spec, ds)
}

// decodeStrictJSON decodes a JSON request document, rejecting fields the
// schema does not define: a misspelled option must fail loudly as
// invalid_request naming the field, never be silently ignored (a typoed
// "seeed" would otherwise run the job with seed 0 and look successful).
func decodeStrictJSON(r io.Reader, v any) *apiError {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if apiErr := asSizeError(err); apiErr != nil {
			return apiErr
		}
		// encoding/json reports unknown fields as `json: unknown field "x"`;
		// surface the field name in the structured error.
		if name, ok := strings.CutPrefix(err.Error(), "json: unknown field "); ok {
			return badRequest("invalid_request", "unknown field %s in JSON body", name)
		}
		return badRequest("invalid_request", "malformed JSON body: %v", err)
	}
	return nil
}

// specFromRequest assembles the job spec from a JSON submission's option
// fields (shared by single-job and batch submissions). The spec still
// needs finishSpec against a concrete dataset.
func specFromRequest(req jobRequest) (Spec, *apiError) {
	spec := Spec{
		Algorithm:       req.Algorithm,
		Algorithms:      req.Algorithms,
		Scorer:          req.Scorer,
		BootstrapRounds: req.BootstrapRounds,
		Params:          req.Params,
		NFolds:          req.Folds,
		Seed:            req.Seed,
		Matrix32:        req.Matrix32,
		Eps:             req.Eps,
		DatasetID:       req.DatasetID,
		DatasetVersion:  req.DatasetVersion,
		LabelFraction:   req.LabelFraction,
	}
	if spec.DatasetVersion < 0 {
		return Spec{}, badRequest("invalid_request", "dataset_version must be >= 0 (0 means the current version)")
	}
	if len(spec.Params) == 0 && (req.ParamMin != 0 || req.ParamMax != 0) {
		var apiErr *apiError
		if spec.Params, apiErr = paramRange(req.ParamMin, req.ParamMax); apiErr != nil {
			return Spec{}, apiErr
		}
	}
	for _, c := range req.Constraints {
		cs, err := constraintFromKind(c.A, c.B, c.Link)
		if err != nil {
			return Spec{}, badRequest("invalid_request", "constraints: %v", err)
		}
		spec.Constraints = append(spec.Constraints, cs)
	}
	return spec, nil
}

func parseMultipartSubmission(r *http.Request, maxBody int64) (Spec, *dataset.Dataset, *apiError) {
	if err := r.ParseMultipartForm(maxBody); err != nil {
		if apiErr := asSizeError(err); apiErr != nil {
			return Spec{}, nil, apiErr
		}
		return Spec{}, nil, badRequest("invalid_request", "malformed multipart body: %v", err)
	}
	file, _, err := r.FormFile("dataset")
	if err != nil {
		return Spec{}, nil, badRequest("invalid_request", `multipart submissions require a "dataset" file part: %v`, err)
	}
	defer file.Close()
	spec, hasLabel, name, apiErr := parseOptions(r.FormValue)
	if apiErr != nil {
		return Spec{}, nil, apiErr
	}
	ds, apiErr := parseCSV(name, file, hasLabel, maxBody)
	if apiErr != nil {
		return Spec{}, nil, apiErr
	}
	return finishSpec(spec, ds)
}

func parseRawSubmission(r *http.Request, maxBody int64) (Spec, *dataset.Dataset, *apiError) {
	q := r.URL.Query()
	spec, hasLabel, name, apiErr := parseOptions(q.Get)
	if apiErr != nil {
		return Spec{}, nil, apiErr
	}
	ds, apiErr := parseCSV(name, r.Body, hasLabel, maxBody)
	if apiErr != nil {
		return Spec{}, nil, apiErr
	}
	return finishSpec(spec, ds)
}

// parseOptions reads the non-dataset job options through get (URL query for
// raw submissions, form values for multipart ones).
func parseOptions(get func(string) string) (spec Spec, hasLabel bool, name string, apiErr *apiError) {
	name = get("name")
	spec.Algorithm = get("algorithm")
	if s := get("algorithms"); s != "" {
		for _, part := range strings.Split(s, ",") {
			if part = strings.TrimSpace(part); part != "" {
				spec.Algorithms = append(spec.Algorithms, part)
			}
		}
	}
	spec.Scorer = get("scorer")
	intField := func(field string, dst *int) bool {
		s := get(field)
		if s == "" {
			return true
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			apiErr = badRequest("invalid_request", "option %q: %v", field, err)
			return false
		}
		*dst = v
		return true
	}
	var pmin, pmax int
	if !intField("folds", &spec.NFolds) || !intField("param_min", &pmin) || !intField("param_max", &pmax) ||
		!intField("bootstrap_rounds", &spec.BootstrapRounds) {
		return Spec{}, false, "", apiErr
	}
	if s := get("seed"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Spec{}, false, "", badRequest("invalid_request", "option %q: %v", "seed", err)
		}
		spec.Seed = v
	}
	if s := get("eps"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Spec{}, false, "", badRequest("invalid_request", "option %q: %v", "eps", err)
		}
		spec.Eps = v
	}
	if s := get("label_fraction"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Spec{}, false, "", badRequest("invalid_request", "option %q: %v", "label_fraction", err)
		}
		spec.LabelFraction = v
	}
	switch strings.ToLower(get("has_label")) {
	case "", "0", "false", "no":
	case "1", "true", "yes":
		hasLabel = true
	default:
		return Spec{}, false, "", badRequest("invalid_request", "option %q: want a boolean", "has_label")
	}
	switch strings.ToLower(get("matrix32")) {
	case "", "0", "false", "no":
	case "1", "true", "yes":
		spec.Matrix32 = true
	default:
		return Spec{}, false, "", badRequest("invalid_request", "option %q: want a boolean", "matrix32")
	}
	if s := get("params"); s != "" {
		for _, part := range strings.Split(s, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return Spec{}, false, "", badRequest("invalid_request", "option %q: %v", "params", err)
			}
			spec.Params = append(spec.Params, v)
		}
	} else if pmin != 0 || pmax != 0 {
		if spec.Params, apiErr = paramRange(pmin, pmax); apiErr != nil {
			return Spec{}, false, "", apiErr
		}
	}
	if s := get("constraints"); s != "" {
		cons, err := parseConstraintLines(s)
		if err != nil {
			return Spec{}, false, "", badRequest("invalid_request", "constraints: %v", err)
		}
		spec.Constraints = cons
	}
	return spec, hasLabel, name, nil
}

// parseConstraintLines parses the cmd/cvcp constraint-file format: one
// constraint per line, "<a> <b> ml" or "<a> <b> cl" with zero-based object
// indices; blank lines and '#' comments are ignored.
func parseConstraintLines(text string) ([]ConstraintSpec, error) {
	var out []ConstraintSpec
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var a, b int
		var kind string
		if _, err := fmt.Sscanf(line, "%d %d %s", &a, &b, &kind); err != nil {
			return nil, fmt.Errorf("line %d: %q: %w", ln+1, line, err)
		}
		cs, err := constraintFromKind(a, b, kind)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out = append(out, cs)
	}
	return out, nil
}

func constraintFromKind(a, b int, kind string) (ConstraintSpec, error) {
	switch strings.ToLower(kind) {
	case "ml", "must", "mustlink", "must-link":
		return ConstraintSpec{A: a, B: b, MustLink: true}, nil
	case "cl", "cannot", "cannotlink", "cannot-link":
		return ConstraintSpec{A: a, B: b, MustLink: false}, nil
	default:
		return ConstraintSpec{}, fmt.Errorf("unknown constraint kind %q (want ml or cl)", kind)
	}
}

// maxCandidates bounds the total candidate (algorithm, parameter) columns
// of one job's grid: each candidate costs a full cross-validation, so a
// larger grid is never a legitimate request — and an unchecked
// param_min/param_max span would let a tiny request allocate an enormous
// slice. For cross-method jobs the limit applies to the sum over all
// algorithms, including registry-default ranges.
const maxCandidates = 512

// maxBootstrapRounds bounds one job's bootstrap resampling: every round
// multiplies the grid like an extra fold, so an unchecked round count
// would let a single small request occupy the server indefinitely.
const maxBootstrapRounds = 512

func paramRange(lo, hi int) ([]int, *apiError) {
	if hi < lo {
		return nil, badRequest("invalid_request", "param_min %d exceeds param_max %d", lo, hi)
	}
	if hi-lo+1 > maxCandidates {
		return nil, badRequest("invalid_request", "parameter range %d..%d has %d candidates, limit %d", lo, hi, hi-lo+1, maxCandidates)
	}
	out := make([]int, 0, hi-lo+1)
	for p := lo; p <= hi; p++ {
		out = append(out, p)
	}
	return out, nil
}

// parseCSV parses the dataset payload, mapping an oversized input to a
// too_large error and any other failure to bad_csv.
func parseCSV(name string, r io.Reader, hasLabel bool, maxBody int64) (*dataset.Dataset, *apiError) {
	if name == "" {
		name = "upload"
	}
	ds, err := dataset.ReadCSVLimited(name, r, hasLabel, maxBody)
	if err != nil {
		if apiErr := asSizeError(err); apiErr != nil {
			return nil, apiErr
		}
		return nil, badRequest("bad_csv", "malformed CSV dataset: %v", err)
	}
	return ds, nil
}

// asSizeError maps body-limit violations (the HTTP server's MaxBytesReader
// or the dataset reader's own cap) to a structured 413.
func asSizeError(err error) *apiError {
	var mbe *http.MaxBytesError
	var se *dataset.SizeError
	if errors.As(err, &mbe) || errors.As(err, &se) {
		return &apiError{status: http.StatusRequestEntityTooLarge, Code: "too_large",
			Message: "request body exceeds the server's size limit"}
	}
	return nil
}

// finishSpec applies registry defaults and validates the assembled spec
// against the parsed dataset.
func finishSpec(spec Spec, ds *dataset.Dataset) (Spec, *dataset.Dataset, *apiError) {
	// gridColumns tallies the total candidate (algorithm, parameter)
	// columns the job will run, counting registry-default ranges where
	// Params is empty; the maxCandidates limit applies to this sum, so a
	// cross-method job cannot multiply the per-job budget by its
	// algorithm count.
	gridColumns := 0
	if len(spec.Algorithms) > 0 {
		// Cross-method job: every named method must exist; an empty Params
		// means each candidate keeps its own registry default range, so no
		// defaulting happens here.
		if spec.Algorithm != "" {
			return Spec{}, nil, badRequest("invalid_request", `"algorithm" and "algorithms" are mutually exclusive`)
		}
		seen := map[string]bool{}
		for _, name := range spec.Algorithms {
			entry, ok := lookupAlgorithm(name)
			if !ok {
				return Spec{}, nil, badRequest("invalid_request", "%v", errUnknownAlgorithm(name))
			}
			if seen[name] {
				return Spec{}, nil, badRequest("invalid_request", "duplicate algorithm %q in algorithms", name)
			}
			seen[name] = true
			if len(spec.Params) > 0 {
				gridColumns += len(spec.Params)
			} else {
				gridColumns += len(entry.defaultParams)
			}
		}
	} else {
		if spec.Algorithm == "" {
			spec.Algorithm = "fosc"
		}
		entry, ok := lookupAlgorithm(spec.Algorithm)
		if !ok {
			return Spec{}, nil, badRequest("invalid_request", "%v", errUnknownAlgorithm(spec.Algorithm))
		}
		if len(spec.Params) == 0 {
			spec.Params = append([]int(nil), entry.defaultParams...)
		}
		gridColumns = len(spec.Params)
	}
	if gridColumns > maxCandidates {
		return Spec{}, nil, badRequest("invalid_request", "%d candidate grid columns, limit %d", gridColumns, maxCandidates)
	}
	for _, p := range spec.Params {
		if p < 1 {
			return Spec{}, nil, badRequest("invalid_request", "candidate parameter %d: must be >= 1", p)
		}
	}
	if spec.Matrix32 && !gridHasFOSC(spec.methods()) {
		// Only FOSC carries an OPTICS distance matrix; accepting matrix32
		// on a grid without one would silently do nothing.
		return Spec{}, nil, badRequest("invalid_request", "matrix32 requires a fosc candidate in the grid")
	}
	if spec.Eps != 0 {
		if math.IsNaN(spec.Eps) || spec.Eps < 0 {
			return Spec{}, nil, badRequest("invalid_request", "eps %v: want a positive radius", spec.Eps)
		}
		if math.IsInf(spec.Eps, 1) {
			// ε=∞ is what the dense default already computes; make clients
			// say what they mean instead of paying the range-query path for
			// nothing (and keep the persisted spec JSON-representable).
			return Spec{}, nil, badRequest("invalid_request", "eps must be finite (omit it for the dense ε=∞ path)")
		}
		if !gridHasFOSC(spec.methods()) {
			// Eps only caps FOSC's OPTICS density estimation.
			return Spec{}, nil, badRequest("invalid_request", "eps requires a fosc candidate in the grid")
		}
		if spec.Matrix32 {
			return Spec{}, nil, badRequest("invalid_request", "eps and matrix32 are mutually exclusive (the ε-range driver computes distances on demand, not from a matrix)")
		}
	}
	if spec.NFolds < 0 {
		return Spec{}, nil, badRequest("invalid_request", "folds must be >= 0 (0 means the default)")
	}
	if _, err := resolveScorer(spec.Scorer, spec.BootstrapRounds); err != nil {
		return Spec{}, nil, badRequest("invalid_request", "%v", err)
	}
	if spec.BootstrapRounds < 0 {
		return Spec{}, nil, badRequest("invalid_request", "bootstrap_rounds must be >= 0 (0 means the default)")
	}
	if spec.BootstrapRounds > maxBootstrapRounds {
		return Spec{}, nil, badRequest("invalid_request", "%d bootstrap rounds, limit %d", spec.BootstrapRounds, maxBootstrapRounds)
	}
	if spec.BootstrapRounds > 0 && spec.Scorer != "bootstrap" {
		return Spec{}, nil, badRequest("invalid_request", `bootstrap_rounds requires scorer "bootstrap"`)
	}
	if spec.NFolds > 0 && spec.Scorer != "" && spec.Scorer != "cv" {
		// Bootstrap and validity scoring never cross-validate; accepting
		// folds here would silently ignore it, the exact failure mode the
		// strict option handling exists to prevent.
		return Spec{}, nil, badRequest("invalid_request", `folds applies only to the cross-validation scorer (scorer "cv")`)
	}
	hasLabels := spec.LabelFraction != 0
	hasCons := len(spec.Constraints) > 0
	if spec.DatasetID != "" {
		// Dataset-referencing jobs run the stable supervision, which only
		// cross-validates (no bootstrap resamples, no whole-dataset
		// validity scoring) and derives everything from label_fraction.
		if hasCons {
			return Spec{}, nil, badRequest("invalid_request", "dataset jobs use stable label supervision; constraints are not supported")
		}
		if !hasLabels {
			return Spec{}, nil, badRequest("invalid_request", "dataset jobs require label_fraction supervision")
		}
		if spec.Scorer != "" && spec.Scorer != "cv" {
			return Spec{}, nil, badRequest("invalid_request", `dataset jobs support only the cross-validation scorer (scorer "cv")`)
		}
		// The stable fold geometry needs every fold populated with at
		// least 4 rows (ds here is the resolved version's snapshot).
		folds := spec.NFolds
		if folds == 0 {
			folds = 10
		}
		if folds < 2 {
			return Spec{}, nil, badRequest("invalid_request", "dataset jobs need at least 2 folds")
		}
		if ds.N() < 4*folds {
			return Spec{}, nil, badRequest("invalid_request", "dataset version has %d rows, too few for %d stable folds of at least 4 rows", ds.N(), folds)
		}
	}
	if spec.Scorer == "bootstrap" && !hasLabels {
		return Spec{}, nil, badRequest("invalid_request", `scorer "bootstrap" requires label_fraction supervision`)
	}
	switch {
	case hasLabels && hasCons:
		return Spec{}, nil, badRequest("invalid_request", "label_fraction and constraints are mutually exclusive")
	case !hasLabels && !hasCons:
		return Spec{}, nil, badRequest("invalid_request", "supervision required: set label_fraction (Scenario I) or constraints (Scenario II)")
	case hasLabels:
		if spec.LabelFraction < 0 || spec.LabelFraction > 1 {
			return Spec{}, nil, badRequest("invalid_request", "label_fraction %v: want a value in (0, 1]", spec.LabelFraction)
		}
		if !ds.Labeled() {
			return Spec{}, nil, badRequest("invalid_request", "label_fraction requires a labeled dataset (set has_label)")
		}
	default:
		for _, c := range spec.Constraints {
			if c.A < 0 || c.A >= ds.N() || c.B < 0 || c.B >= ds.N() {
				return Spec{}, nil, badRequest("invalid_request", "constraint (%d, %d): object index out of range [0, %d)", c.A, c.B, ds.N())
			}
			if c.A == c.B {
				return Spec{}, nil, badRequest("invalid_request", "constraint (%d, %d): a pair needs two distinct objects", c.A, c.B)
			}
		}
	}
	return spec, ds, nil
}
