package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"cvcp/internal/dataset"
	"cvcp/internal/store"
)

// specRecord is the opaque Spec payload the manager persists into a
// store.Record: the job specification plus the view-level dataset identity
// (terminal records drop the dataset payload, so name and size must
// survive on their own) and the last progress counters.
type specRecord struct {
	Spec        Spec   `json:"spec"`
	DatasetName string `json:"dataset_name"`
	Objects     int    `json:"objects"`
	Done        int    `json:"done"`
	Total       int    `json:"total"`
	// LastSeq is the event sequence high-water mark at the time of the
	// record write. Record puts fsync independently of the (coalesced,
	// swallowed-on-error) event appends, so this floor survives even
	// when the event log stalls — restart seeding takes the max of the
	// replayed log and this value before applying seqRequeueGap, keeping
	// Last-Event-ID resume collision-safe across repeated crashes.
	LastSeq int `json:"last_seq,omitempty"`
}

// datasetRecord is the opaque dataset payload of a non-terminal record —
// everything needed to rebuild the dataset and re-run the job after a
// restart. WriteCSV emits full float64 precision, so the rebuilt dataset
// (and hence the re-run selection, with the persisted seed) is
// bit-identical to the original.
type datasetRecord struct {
	HasLabel bool   `json:"has_label"`
	CSV      string `json:"csv"`
}

// marshalDataset serializes a dataset into the persisted payload form.
// It is called once per submission, outside the manager lock (the CSV
// round-trip is the expensive part of persisting a job), and the result
// is reused for every non-terminal persist of that job.
func marshalDataset(ds *dataset.Dataset) []byte {
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		return nil
	}
	blob, _ := json.Marshal(datasetRecord{HasLabel: ds.Labeled(), CSV: buf.String()})
	return blob
}

// record snapshots the job as a persistable store.Record. Terminal records
// carry the result but not the dataset; live records carry the dataset so
// an interrupted job can be re-queued on restart.
func (j *Job) record() store.Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	specJSON, _ := json.Marshal(specRecord{
		Spec: j.spec, DatasetName: j.dsName, Objects: j.objects,
		Done: j.done, Total: j.total, LastSeq: j.seq,
	})
	rec := store.Record{
		ID:       j.id,
		Batch:    j.batch,
		Status:   string(j.status),
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Error:    j.errMsg,
		Spec:     specJSON,
	}
	if j.status.Terminal() {
		if j.result != nil {
			rec.Result, _ = json.Marshal(j.result)
		}
	} else {
		rec.Dataset = j.dsBlob
	}
	return rec
}

// jobFromRecord rebuilds a job from a persisted record during startup
// replay. prior is the job's persisted event log (may be empty for
// stores written before event persistence existed). Terminal records
// resurrect as finished jobs — result, timestamps and full event history
// intact, so SSE replay streams the identical sequence it streamed
// before the restart. Non-terminal records — the jobs a previous process
// was killed around — rebuild their dataset and come back as queued
// jobs appending to their existing log (seq numbering continues);
// requeue reports that the caller must enqueue them. A record that
// cannot be decoded comes back as a failed job carrying the decode
// error, so corruption is visible in listings instead of silently
// dropped.
func jobFromRecord(rec store.Record, parent context.Context, log jobEventLog, prior []Event) (j *Job, requeue bool) {
	var sr specRecord
	if err := json.Unmarshal(rec.Spec, &sr); err != nil {
		return corruptJob(rec, fmt.Errorf("decoding job spec: %w", err), log, prior), false
	}
	status := Status(rec.Status)
	if status.Terminal() {
		j := newResurrectedJob(rec, sr, status, log, prior)
		if len(rec.Result) > 0 {
			var res ResultView
			if err := json.Unmarshal(rec.Result, &res); err == nil {
				j.result = &res
			}
		}
		return j, false
	}

	// Interrupted mid-flight: rebuild the dataset and re-queue.
	var dr datasetRecord
	if err := json.Unmarshal(rec.Dataset, &dr); err != nil {
		return corruptJob(rec, fmt.Errorf("decoding job dataset: %w", err), log, prior), false
	}
	ds, err := dataset.ReadCSV(sr.DatasetName, strings.NewReader(dr.CSV), dr.HasLabel)
	if err != nil {
		return corruptJob(rec, fmt.Errorf("rebuilding job dataset: %w", err), log, prior), false
	}
	j = newJob(rec.ID, rec.Batch, sr.Spec, ds, rec.Dataset, parent, log, prior, sr.LastSeq, true)
	j.created = rec.Created // keep the original submission time
	return j, true
}

// newResurrectedJob builds a terminal job shell from a record: no
// context, no dataset, no live subscribers — the persisted state plus
// the replayed event history. When the log already ends with the
// terminal status (the normal case for stores with event persistence)
// nothing is appended and replay is bit-identical to the pre-restart
// stream; a legacy or truncated log gets a condensed completion (the
// missing lifecycle events) appended so the stream still ends terminal.
func newResurrectedJob(rec store.Record, sr specRecord, status Status, log jobEventLog, prior []Event) *Job {
	j := &Job{
		id:       rec.ID,
		batch:    rec.Batch,
		spec:     sr.Spec,
		dsName:   sr.DatasetName,
		objects:  sr.Objects,
		created:  rec.Created,
		started:  rec.Started,
		finished: rec.Finished,
		status:   status,
		done:     sr.Done,
		total:    sr.Total,
		errMsg:   rec.Error,
		log:      log,
	}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.cancel()
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seedEventsLocked(prior)
	if sr.LastSeq > j.seq {
		j.seq = sr.LastSeq // the record's fsynced high-water mark; see specRecord.LastSeq
	}
	if j.seq == 0 {
		// Legacy record (pre-event-persistence): condensed history.
		j.publishLocked(Event{Type: "status", Status: StatusQueued})
		j.publishLocked(Event{Type: "status", Status: status})
		return j
	}
	lastIsTerminal := false
	if len(prior) > 0 {
		last := prior[len(prior)-1]
		lastIsTerminal = last.Type == "status" && last.Status == status
	}
	if !lastIsTerminal {
		// Completing a truncated (or wholly lost) log: gap the seq first
		// so the appended events cannot collide with a crash-lost suffix
		// a subscriber may have seen (see seqRequeueGap).
		j.seq += seqRequeueGap
		if len(prior) == 0 {
			j.publishLocked(Event{Type: "status", Status: StatusQueued})
		}
		j.publishLocked(Event{Type: "status", Status: status})
	}
	return j
}

// corruptJob marks an undecodable record as a failed job so it stays
// visible.
func corruptJob(rec store.Record, err error, log jobEventLog, prior []Event) *Job {
	j := newResurrectedJob(rec, specRecord{DatasetName: "(corrupt record)"}, StatusFailed, log, prior)
	j.errMsg = fmt.Sprintf("restored from store: %v", err)
	if j.finished.IsZero() {
		j.finished = time.Now()
	}
	return j
}

// viewFromRecord builds a JobView straight from a record, for listings
// that encounter a record with no resident job (e.g. evicted between the
// store read and the view pass).
func viewFromRecord(rec store.Record) JobView {
	var sr specRecord
	_ = json.Unmarshal(rec.Spec, &sr)
	v := JobView{
		ID:         rec.ID,
		Batch:      rec.Batch,
		Status:     Status(rec.Status),
		Algorithm:  sr.Spec.Algorithm,
		Algorithms: sr.Spec.Algorithms,
		Scorer:     sr.Spec.Scorer,
		Matrix32:   sr.Spec.Matrix32,
		Eps:        sr.Spec.Eps,
		Tenant:     sr.Spec.Tenant,
		Dataset:    sr.DatasetName,
		DatasetID:  sr.Spec.DatasetID,
		DatasetVer: sr.Spec.DatasetVersion,
		Objects:    sr.Objects,
		Params:     sr.Spec.Params,
		Folds:      sr.Spec.NFolds,
		Seed:       sr.Spec.Seed,
		Created:    rec.Created,
		Done:       sr.Done,
		Total:      sr.Total,
		Error:      rec.Error,
	}
	if !rec.Started.IsZero() {
		t := rec.Started
		v.Started = &t
	}
	if !rec.Finished.IsZero() {
		t := rec.Finished
		v.Finished = &t
	}
	if len(rec.Result) > 0 {
		var res ResultView
		if err := json.Unmarshal(rec.Result, &res); err == nil {
			v.Result = &res
		}
	}
	return v
}

// metaID is the reserved record ID of the manager's counter high-water
// mark. It sorts before every "job-" ID, is skipped by job listings and
// replay, and exists so that IDs of jobs evicted before a restart are
// never re-issued to new jobs (the surviving records alone cannot prove
// how far the counters had advanced).
const metaID = "_meta"

// metaRecord is the Spec payload of the metaID record.
type metaRecord struct {
	NextID    int `json:"next_id"`
	NextBatch int `json:"next_batch"`
	// NextDataset covers dataset IDs the same way. Reusing a deleted
	// dataset's ID would be benign for scores (cell cache keys are
	// content-addressed), but the high-water mark keeps IDs unambiguous
	// in logs and metrics.
	NextDataset int `json:"next_dataset,omitempty"`
}

// numericSuffix parses the numeric tail of a "prefix-000123" identifier;
// the manager uses it to resume its ID counters past everything replayed
// from the store.
func numericSuffix(id, prefix string) (int, bool) {
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(id, prefix))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
