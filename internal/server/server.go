// Package server is the CVCP selection service: a JSON HTTP API over an
// asynchronous job manager that runs model selections through the
// internal/runner engine and persists job state through an internal/store
// Store.
//
// The API (cmd/cvcpd serves it; docs/api.md is the full reference):
//
//	POST   /v1/jobs             submit a selection job (CSV dataset in the
//	                            request body, as a multipart upload, or
//	                            inline in a JSON document)
//	GET    /v1/jobs             list jobs, cursor-paginated
//	                            (?limit=&cursor=)
//	GET    /v1/jobs/{id}        job status, progress and result
//	DELETE /v1/jobs/{id}        cancel a queued or running job (a queued
//	                            job leaves the FIFO queue immediately)
//	GET    /v1/jobs/{id}/events stream progress as Server-Sent Events
//	POST   /v1/batches          submit N datasets sharing one option set
//	GET    /v1/batches/{id}     aggregate per-item status of a batch
//	GET    /healthz             liveness
//
// Behind the API sits the Manager: a bounded FIFO queue feeding a fixed
// set of job executors, with a global worker budget (a runner.Limiter)
// shared by every running job's fold×parameter grid — the machine-wide
// concurrency is bounded no matter how many jobs run at once, and all
// clustering work dispatches through internal/runner rather than ad-hoc
// goroutines.
//
// Job state is delegated to a store.Store (Config.Store): every lifecycle
// transition — and every published SSE event, via the store's EventLog —
// is mirrored into it, listings page through it, and finished jobs
// beyond the retention window are evicted oldest-first (dropping their
// event logs with them). With the default in-memory store the service is
// exactly as ephemeral as before the store existed; with a file store
// (cvcpd -store-dir) the manager replays the store on startup — finished
// jobs reappear with their results and full event histories (SSE replay
// streams the identical sequence before and after a restart, and
// Last-Event-ID resume works across it), and jobs interrupted mid-run
// are re-queued, appending to their existing event logs, and, thanks to
// deterministic per-cell seeding, select the same parameter they would
// have.
//
// Shutdown drains gracefully: new submissions are rejected, queued and
// running jobs finish (or are force-cancelled when the drain context
// expires), and the final states are persisted before the store's owner
// compacts and closes it.
package server

import (
	"runtime"
	"time"

	"cvcp/internal/store"
)

// Role selects how a cvcpd process participates in a topology. A single
// process (the default) computes its own jobs. A coordinator accepts and
// manages jobs but distributes their grids as shard records through the
// shared store; workers lease shards from the same store and compute
// them. Deterministic per-cell seeding makes every topology — including
// one whose workers crash mid-shard and have their leases reclaimed —
// produce selections bit-identical to a single process.
type Role string

const (
	// RoleSingle computes jobs in-process (no distribution).
	RoleSingle Role = "single"
	// RoleCoordinator serves the API and shards job grids into the
	// shared store for workers; it never computes cells itself.
	RoleCoordinator Role = "coordinator"
	// RoleWorker leases and computes shards from the shared store; it
	// serves no API (see RunWorker).
	RoleWorker Role = "worker"
)

// Tenant is one API-key principal of a multi-tenant deployment: a
// bearer key, a stable name (persisted on the tenant's jobs), a fair-
// queueing weight and an optional queue quota. Configuring at least one
// tenant switches the API to mandatory key authentication; with no
// tenants configured the API is open and all jobs run as the anonymous
// weight-1 tenant.
type Tenant struct {
	// Key is the API key presented as "Authorization: Bearer <key>" or
	// "X-API-Key: <key>".
	Key string
	// Name identifies the tenant in job records, fair-queue accounting
	// and operator tooling. Must be unique across tenants.
	Name string
	// Weight is the tenant's weighted-fair-queueing share; under
	// contention tenants dequeue in proportion to their weights. Values
	// < 1 mean 1.
	Weight int
	// MaxQueued caps the tenant's waiting (queued + mid-submission)
	// jobs; submissions beyond it fail with ErrTenantQuota. 0 means no
	// per-tenant cap beyond the global QueueDepth.
	MaxQueued int
}

// Config sizes the Manager.
type Config struct {
	// QueueDepth bounds how many submitted jobs may wait for an executor;
	// submissions beyond it fail with ErrQueueFull. A batch needs one
	// slot per dataset. 0 means 64.
	QueueDepth int
	// MaxRunningJobs is the number of job executors — how many selections
	// may be in the running state at once. 0 means 2.
	MaxRunningJobs int
	// WorkerBudget is the global number of fold×parameter tasks executing
	// at once across ALL running jobs (the capacity of the shared
	// runner.Limiter). 0 means one per CPU.
	WorkerBudget int
	// RetainFinished bounds how many finished (done/failed/cancelled) jobs
	// the store keeps; older finished jobs are evicted. 0 means 64.
	RetainFinished int
	// MaxBodyBytes caps the request body (and hence the CSV dataset(s)) of
	// a submission. 0 means 32 MiB.
	MaxBodyBytes int64
	// Store persists job records. The manager replays it on startup and
	// mirrors every job transition into it. Nil means a fresh in-memory
	// store (no durability). The manager never closes the store; its
	// owner does, after Shutdown.
	Store store.Store
	// Role selects single-process or coordinator operation ("" means
	// RoleSingle). A coordinator requires a Store that supports atomic
	// updates (store.Updater — both built-in stores do); jobs whose
	// scorer cannot be sharded (validity indices) fall back to local
	// execution even on a coordinator.
	Role Role
	// ShardCells is the coordinator's target grid cells per shard;
	// 0 means 16.
	ShardCells int
	// LeaseTTL is how long a worker's shard lease lives without a
	// heartbeat renewal before another worker may reclaim it; 0 means
	// 10s. Coordinator and workers should agree, but correctness never
	// depends on it — only reclaim latency does.
	LeaseTTL time.Duration
	// Poll is the coordinator's shard-watch interval (and the worker's
	// idle scan interval in RunWorker); 0 means 100ms.
	Poll time.Duration
	// Tenants, when non-empty, enables per-tenant API keys with weighted
	// fair queueing: every /v1 request must present a configured key,
	// and each tenant's jobs are scheduled under its Weight and bounded
	// by its MaxQueued quota. Empty means an open API with a single
	// anonymous weight-1 tenant (the pre-multi-tenant behavior).
	Tenants []Tenant
	// DisableMetrics hides GET /metrics from the API handler (cvcpd
	// -metrics=false). Instrumentation still runs; only the exposition
	// endpoint disappears.
	DisableMetrics bool
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxRunningJobs <= 0 {
		c.MaxRunningJobs = 2
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if c.RetainFinished <= 0 {
		c.RetainFinished = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Store == nil {
		c.Store = store.NewMemory()
	}
	if c.Role == "" {
		c.Role = RoleSingle
	}
	return c
}
