package server

import (
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cvcp/internal/dataset"
)

// maxBatchDatasets bounds how many datasets one batch submission may
// carry; each dataset becomes a full selection job, so a larger batch is
// better split across requests anyway.
const maxBatchDatasets = 64

// BatchItem is one validated member of a batch submission: a dataset plus
// the (shared, per-dataset validated) job spec it runs under.
type BatchItem struct {
	Spec    Spec
	Dataset *dataset.Dataset
}

// BatchView is the aggregate JSON form of a batch: per-item job views plus
// status counts. Total counts every job ever in the batch; Evicted counts
// members whose finished jobs have aged out of the retention window (they
// no longer appear in Jobs).
type BatchView struct {
	ID      string         `json:"id"`
	Created time.Time      `json:"created"`
	Total   int            `json:"total"`
	Evicted int            `json:"evicted,omitempty"`
	Counts  map[Status]int `json:"counts"`
	Done    bool           `json:"done"`
	Jobs    []JobView      `json:"jobs"`
}

// batchRequest is the JSON document of POST /v1/batches: N datasets
// sharing one option set. The option fields mirror the single-job JSON
// submission (jobRequest) exactly, minus the inline CSV.
type batchRequest struct {
	Datasets []batchDataset `json:"datasets"`

	Algorithm       string           `json:"algorithm"`
	Algorithms      []string         `json:"algorithms"`
	Scorer          string           `json:"scorer"`
	BootstrapRounds int              `json:"bootstrap_rounds"`
	Params          []int            `json:"params"`
	ParamMin        int              `json:"param_min"`
	ParamMax        int              `json:"param_max"`
	Folds           int              `json:"folds"`
	Seed            int64            `json:"seed"`
	LabelFraction   float64          `json:"label_fraction"`
	Constraints     []constraintJSON `json:"constraints"`
}

// batchDataset is one dataset of a batch submission.
type batchDataset struct {
	Name     string `json:"name"`
	CSV      string `json:"csv"`
	HasLabel bool   `json:"has_label"`
}

// parseBatchSubmission extracts the validated items of a POST /v1/batches
// request: the shared options become one base spec, then every dataset is
// parsed and the spec validated against it (constraint indices and label
// requirements are per-dataset properties).
func parseBatchSubmission(r *http.Request, maxBody int64) ([]BatchItem, *apiError) {
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		return nil, badRequest("invalid_request", "batch submissions are JSON documents (got Content-Type %q)", ct)
	}
	var req batchRequest
	if apiErr := decodeStrictJSON(r.Body, &req); apiErr != nil {
		return nil, apiErr
	}
	if len(req.Datasets) == 0 {
		return nil, badRequest("invalid_request", `batch submissions require a non-empty "datasets" list`)
	}
	if len(req.Datasets) > maxBatchDatasets {
		return nil, badRequest("invalid_request", "%d datasets in one batch, limit %d", len(req.Datasets), maxBatchDatasets)
	}
	base, apiErr := specFromRequest(jobRequest{
		Algorithm: req.Algorithm, Algorithms: req.Algorithms,
		Scorer: req.Scorer, BootstrapRounds: req.BootstrapRounds,
		Params:   req.Params,
		ParamMin: req.ParamMin, ParamMax: req.ParamMax,
		Folds: req.Folds, Seed: req.Seed,
		LabelFraction: req.LabelFraction, Constraints: req.Constraints,
	})
	if apiErr != nil {
		return nil, apiErr
	}
	items := make([]BatchItem, 0, len(req.Datasets))
	for i, d := range req.Datasets {
		if d.CSV == "" {
			return nil, badRequest("invalid_request", `datasets[%d]: non-empty "csv" required`, i)
		}
		name := d.Name
		if name == "" {
			name = "upload"
		}
		ds, apiErr := parseCSV(name, strings.NewReader(d.CSV), d.HasLabel, maxBody)
		if apiErr != nil {
			apiErr.Message = "datasets[" + strconv.Itoa(i) + "]: " + apiErr.Message
			return nil, apiErr
		}
		spec, ds, apiErr := finishSpec(base, ds)
		if apiErr != nil {
			apiErr.Message = "datasets[" + strconv.Itoa(i) + "]: " + apiErr.Message
			return nil, apiErr
		}
		items = append(items, BatchItem{Spec: spec, Dataset: ds})
	}
	return items, nil
}

// submitBatch handles POST /v1/batches.
func (a *api) submitBatch(w http.ResponseWriter, r *http.Request) {
	maxBody := a.m.Config().MaxBodyBytes
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	items, apiErr := parseBatchSubmission(r, maxBody)
	if apiErr != nil {
		writeError(w, apiErr)
		return
	}
	for i := range items {
		items[i].Spec.Tenant = requestTenant(r)
	}
	view, err := a.m.SubmitBatch(items)
	switch {
	case errors.Is(err, ErrQueueFull):
		writeError(w, &apiError{status: http.StatusTooManyRequests, Code: "queue_full", Message: err.Error()})
		return
	case errors.Is(err, ErrTenantQuota):
		writeError(w, &apiError{status: http.StatusTooManyRequests, Code: "quota_exceeded", Message: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		writeError(w, &apiError{status: http.StatusServiceUnavailable, Code: "draining", Message: err.Error()})
		return
	case err != nil:
		writeError(w, &apiError{status: http.StatusInternalServerError, Code: "internal", Message: err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/batches/"+view.ID)
	writeJSON(w, http.StatusAccepted, view)
}

// getBatch handles GET /v1/batches/{id}.
func (a *api) getBatch(w http.ResponseWriter, r *http.Request) {
	view, err := a.m.GetBatch(r.PathValue("id"))
	if err != nil {
		writeError(w, &apiError{status: http.StatusNotFound, Code: "not_found", Message: "server: no such batch"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}
