package server

import "cvcp/internal/metrics"

// The manager's metric families, registered process-wide at init (see
// internal/metrics: importing the package is registration, and GET
// /metrics on any handler serves every family). Counters are
// cumulative over the process; the gauges track the manager's live
// queue and executor occupancy.
var (
	mJobsSubmitted = metrics.NewCounter("cvcpd_jobs_submitted_total",
		"Jobs accepted into the queue (batch items count individually).")
	mJobsRejected = metrics.NewCounterVec("cvcpd_jobs_rejected_total",
		"Submissions rejected, by reason (queue_full, quota_exceeded, draining, store_error).", "reason")
	mJobsCompleted = metrics.NewCounterVec("cvcpd_jobs_completed_total",
		"Jobs that reached a terminal state, by final status.", "status")
	mJobsEvicted = metrics.NewCounter("cvcpd_jobs_evicted_total",
		"Finished jobs evicted beyond the retention window.")
	mJobsQueued = metrics.NewGauge("cvcpd_jobs_queued",
		"Jobs waiting for an executor, including slots reserved by in-flight submissions.")
	mJobsRunning = metrics.NewGauge("cvcpd_jobs_running",
		"Jobs currently executing.")
	mJobDuration = metrics.NewHistogram("cvcpd_job_duration_seconds",
		"End-to-end job latency, submission to terminal state.", metrics.DurationBuckets)
	mAuthFailures = metrics.NewCounter("cvcpd_auth_failures_total",
		"API requests rejected for a missing or unknown API key.")
	mDatasetVersion = metrics.NewGaugeVec("cvcpd_dataset_version",
		"Current version of each registered dataset; the series disappears when the dataset is deleted.", "dataset")
	mDatasetCellsSwept = metrics.NewCounter("cvcpd_dataset_cells_swept_total",
		"Cell-cache records deleted by dataset deletion sweeps.")
	mReselectDirty = metrics.NewCounter("cvcpd_reselect_cells_dirty_total",
		"Cells computed (not served from the cell cache) by dataset-referencing selection jobs.")
	mReselectReused = metrics.NewCounter("cvcpd_reselect_cells_reused_total",
		"Cells served from the cell cache by dataset-referencing selection jobs.")
)

// rejectReason maps a submission error to its rejection-counter label.
func rejectReason(err error) string {
	switch err {
	case ErrQueueFull:
		return "queue_full"
	case ErrTenantQuota:
		return "quota_exceeded"
	case ErrDraining:
		return "draining"
	default:
		return "store_error"
	}
}

// queueGaugeLocked refreshes the queued-jobs gauge; callers hold m.mu
// and call it after every queue or reservation mutation.
func (m *Manager) queueGaugeLocked() {
	mJobsQueued.Set(int64(m.queue.len() + m.reserved))
}
