package server

import (
	"context"
	"math"
	"testing"
)

// The eps option threads through spec validation, execution and the job
// view — the server-side mirror of the library's ε-equivalence tests.
func TestEpsSpec(t *testing.T) {
	ds, _ := testDataset(t, 30)

	base := Spec{Algorithm: "fosc", Params: []int{3, 6}, NFolds: 2, Seed: 5, LabelFraction: 0.5}

	for name, bad := range map[string]Spec{
		"negative": func() Spec { s := base; s.Eps = -1; return s }(),
		"nan":      func() Spec { s := base; s.Eps = math.NaN(); return s }(),
		"infinite": func() Spec { s := base; s.Eps = math.Inf(1); return s }(),
		"no fosc": func() Spec {
			s := base
			s.Algorithm = "mpck"
			s.Params = []int{2, 3}
			s.Eps = 5
			return s
		}(),
		"with matrix32": func() Spec { s := base; s.Eps = 5; s.Matrix32 = true; return s }(),
	} {
		if _, _, apiErr := finishSpec(bad, ds); apiErr == nil {
			t.Errorf("%s eps spec was accepted", name)
		}
	}

	good := base
	good.Eps = 500
	spec, _, apiErr := finishSpec(good, ds)
	if apiErr != nil {
		t.Fatalf("finite eps with fosc rejected: %v", apiErr.Message)
	}
	if cross, _, apiErr := finishSpec(Spec{Algorithms: []string{"mpck", "fosc"}, Params: []int{3, 6}, Eps: 500, NFolds: 2, Seed: 5, LabelFraction: 0.5}, ds); apiErr != nil || cross.Eps != 500 {
		t.Fatalf("eps with fosc among algorithms rejected: %v", apiErr)
	}

	m := NewManager(Config{MaxRunningJobs: 1, WorkerBudget: 2})
	defer m.Shutdown(context.Background())

	// Dense reference for the same data and options.
	denseJob, err := m.Submit(base, ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, denseJob); s != StatusDone {
		t.Fatalf("dense job finished as %s (%s)", s, denseJob.View().Error)
	}

	// The test dataset spans a few tens of units; eps 500 exceeds its
	// diameter, so the ε-range driver must select identically to dense.
	epsJob, err := m.Submit(spec, ds)
	if err != nil {
		t.Fatal(err)
	}
	if s := waitTerminal(t, epsJob); s != StatusDone {
		t.Fatalf("eps job finished as %s (%s)", s, epsJob.View().Error)
	}
	v := epsJob.View()
	if v.Eps != 500 {
		t.Fatalf("job view eps = %v, want 500", v.Eps)
	}
	sameResultView(t, v.Result, denseJob.View().Result)
}
