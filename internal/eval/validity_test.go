package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func twoTightClusters() ([][]float64, []int) {
	return [][]float64{{0, 0}, {0.2, 0}, {10, 0}, {10.2, 0}}, []int{0, 0, 1, 1}
}

func TestDaviesBouldin(t *testing.T) {
	x, good := twoTightClusters()
	bad := []int{0, 1, 0, 1}
	db1 := DaviesBouldin(x, good)
	db2 := DaviesBouldin(x, bad)
	if !(db1 < db2) {
		t.Errorf("DB(good)=%v must be below DB(bad)=%v", db1, db2)
	}
	if !math.IsInf(DaviesBouldin(x, []int{0, 0, 0, 0}), 1) {
		t.Error("single cluster must score +Inf")
	}
	// Coincident centroids degenerate to +Inf.
	xc := [][]float64{{0}, {0}, {0}, {0}}
	if !math.IsInf(DaviesBouldin(xc, []int{0, 1, 0, 1}), 1) {
		t.Error("coincident centroids must score +Inf")
	}
}

func TestCalinskiHarabasz(t *testing.T) {
	x, good := twoTightClusters()
	bad := []int{0, 1, 0, 1}
	if !(CalinskiHarabasz(x, good) > CalinskiHarabasz(x, bad)) {
		t.Error("CH must prefer the correct partition")
	}
	if CalinskiHarabasz(x, []int{0, 0, 0, 0}) != 0 {
		t.Error("single cluster must score 0")
	}
	// Perfect separation with zero within-variance: defined as 0 (degenerate).
	xz := [][]float64{{0}, {0}, {5}, {5}}
	if CalinskiHarabasz(xz, []int{0, 0, 1, 1}) != 0 {
		t.Error("zero within-variance must score 0")
	}
}

func TestDunn(t *testing.T) {
	x, good := twoTightClusters()
	bad := []int{0, 1, 0, 1}
	dg := Dunn(x, good)
	db := Dunn(x, bad)
	if !(dg > db) {
		t.Errorf("Dunn(good)=%v must exceed Dunn(bad)=%v", dg, db)
	}
	// Good split: min between = 9.8, max diameter = 0.2 -> 49.
	if math.Abs(dg-49) > 1e-9 {
		t.Errorf("Dunn(good) = %v, want 49", dg)
	}
	if Dunn(x, []int{0, 0, 0, 0}) != 0 {
		t.Error("single cluster must score 0")
	}
}

// Property: all three indices ignore noise and never panic; DB >= 0,
// CH >= 0, Dunn >= 0 on arbitrary labelings.
func TestValidityIndicesNonNegative(t *testing.T) {
	f := func(pts [8][2]float64, labels [8]uint8) bool {
		x := make([][]float64, 8)
		lab := make([]int, 8)
		for i := range pts {
			a := math.Mod(pts[i][0], 50)
			b := math.Mod(pts[i][1], 50)
			if math.IsNaN(a) {
				a = 0
			}
			if math.IsNaN(b) {
				b = 0
			}
			x[i] = []float64{a, b}
			lab[i] = int(labels[i]%4) - 1
		}
		db := DaviesBouldin(x, lab)
		ch := CalinskiHarabasz(x, lab)
		dn := Dunn(x, lab)
		return db >= 0 && ch >= 0 && dn >= 0 && !math.IsNaN(db) && !math.IsNaN(ch) && !math.IsNaN(dn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
