package eval

import (
	"math"

	"cvcp/internal/linalg"
)

// Silhouette computes the mean silhouette coefficient of the labeling under
// the Euclidean distance — the internal relative validity criterion the
// paper uses as the classical model-selection baseline for MPCKmeans
// (Kaufman & Rousseeuw 1990). Objects in singleton clusters score 0; noise
// objects (label < 0) are excluded. It returns 0 when fewer than two
// clusters are present (the coefficient is undefined there, and a selector
// must not prefer such a solution).
func Silhouette(x [][]float64, labels []int) float64 {
	n := len(x)
	members := map[int][]int{}
	for i, l := range labels {
		if l >= 0 {
			members[l] = append(members[l], i)
		}
	}
	if len(members) < 2 {
		return 0
	}
	var total float64
	var count int
	for i := 0; i < n; i++ {
		li := labels[i]
		if li < 0 {
			continue
		}
		count++
		own := members[li]
		if len(own) == 1 {
			continue // s(i) = 0 by convention
		}
		var aSum float64
		for _, j := range own {
			if j != i {
				aSum += linalg.Dist(x[i], x[j])
			}
		}
		a := aSum / float64(len(own)-1)
		b := math.Inf(1)
		for l, other := range members {
			if l == li {
				continue
			}
			var s float64
			for _, j := range other {
				s += linalg.Dist(x[i], x[j])
			}
			if m := s / float64(len(other)); m < b {
				b = m
			}
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}
