// Package eval implements the evaluation measures of the paper: the internal
// constraint-classification F-measure CVCP scores candidate models with
// (§3.2), the external Overall F-Measure used as clustering ground-truth
// agreement (§4.1), the Silhouette coefficient baseline for selecting k, and
// additional pair-counting indices (Rand, adjusted Rand) for diagnostics.
package eval

import (
	"cvcp/internal/constraints"
)

// SameCluster reports whether objects a and b share a cluster under the
// labeling. Noise objects (label < 0) belong to no cluster, so a pair
// involving noise is never in the same cluster.
func SameCluster(labels []int, a, b int) bool {
	return labels[a] >= 0 && labels[a] == labels[b]
}

// ConstraintConfusion is the 2×2 confusion of a partition viewed as a
// classifier over constraints: must-link is class 1 ("same cluster"),
// cannot-link is class 0 ("split").
type ConstraintConfusion struct {
	TPSame  int // must-link pairs placed in the same cluster
	FNSame  int // must-link pairs split
	TPSplit int // cannot-link pairs split
	FNSplit int // cannot-link pairs placed in the same cluster
}

// Confusion evaluates the labeling against the constraint set.
func Confusion(labels []int, cons *constraints.Set) ConstraintConfusion {
	var c ConstraintConfusion
	for _, p := range cons.MustLinks() {
		if SameCluster(labels, p.A, p.B) {
			c.TPSame++
		} else {
			c.FNSame++
		}
	}
	for _, p := range cons.CannotLinks() {
		if SameCluster(labels, p.A, p.B) {
			c.FNSplit++
		} else {
			c.TPSplit++
		}
	}
	return c
}

// fMeasure returns the F1 score given true positives, false positives and
// false negatives, with the 0/0 case defined as 0.
func fMeasure(tp, fp, fn int) float64 {
	denom := float64(2*tp + fp + fn)
	if denom == 0 {
		return 0
	}
	return 2 * float64(tp) / denom
}

// ConstraintF computes the paper's internal quality score: the average of
// the per-class F-measures of the constraint classifier (class 1 =
// must-link, class 0 = cannot-link). When one class has no constraints in
// the test fold, the average is taken over the present class only; an empty
// constraint set scores 0.
func ConstraintF(labels []int, cons *constraints.Set) float64 {
	c := Confusion(labels, cons)
	nML := c.TPSame + c.FNSame
	nCL := c.TPSplit + c.FNSplit
	if nML+nCL == 0 {
		return 0
	}
	// False positives for "same" are cannot-link pairs predicted same, and
	// vice versa.
	fSame := fMeasure(c.TPSame, c.FNSplit, c.FNSame)
	fSplit := fMeasure(c.TPSplit, c.FNSame, c.FNSplit)
	switch {
	case nML == 0:
		return fSplit
	case nCL == 0:
		return fSame
	default:
		return (fSame + fSplit) / 2
	}
}

// SatisfactionRate returns the fraction of constraints the labeling
// satisfies; a secondary diagnostic (the paper's score is ConstraintF).
func SatisfactionRate(labels []int, cons *constraints.Set) float64 {
	c := Confusion(labels, cons)
	total := c.TPSame + c.FNSame + c.TPSplit + c.FNSplit
	if total == 0 {
		return 0
	}
	return float64(c.TPSame+c.TPSplit) / float64(total)
}
