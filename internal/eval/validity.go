package eval

import (
	"math"
	"sort"

	"cvcp/internal/linalg"
)

// This file implements the classical relative clustering validity criteria
// beyond the Silhouette coefficient — Davies–Bouldin, Calinski–Harabasz and
// Dunn — from the comparative study the paper cites for unsupervised model
// selection (Vendramin, Campello & Hruschka, Statistical Analysis and Data
// Mining 2010). They serve as additional baselines against CVCP for
// partitional methods. All three ignore noise objects (label < 0) and are
// defined to return a "worst" value when fewer than two clusters exist, so
// a selector never prefers a degenerate solution.

// clusterIndex groups object indices by cluster label, skipping noise.
func clusterIndex(labels []int) map[int][]int {
	members := map[int][]int{}
	for i, l := range labels {
		if l >= 0 {
			members[l] = append(members[l], i)
		}
	}
	return members
}

// sortedIDs returns the cluster labels in increasing order. Every criterion
// below iterates clusters through it: floating-point accumulation is not
// associative, so summing in Go's randomized map order would make scores
// differ in the last bits from run to run — breaking the bit-identical
// guarantee every selection surface relies on.
func sortedIDs(members map[int][]int) []int {
	ids := make([]int, 0, len(members))
	for l := range members {
		ids = append(ids, l)
	}
	sort.Ints(ids)
	return ids
}

// DaviesBouldin computes the Davies–Bouldin index (lower is better): the
// mean over clusters of the worst ratio (s_i + s_j) / d(c_i, c_j), where
// s_i is the mean distance of cluster i's members to its centroid. It
// returns +Inf when fewer than two clusters are present.
func DaviesBouldin(x [][]float64, labels []int) float64 {
	members := clusterIndex(labels)
	if len(members) < 2 {
		return math.Inf(1)
	}
	ids := sortedIDs(members)
	centroids := map[int][]float64{}
	scatter := map[int]float64{}
	for _, l := range ids {
		idx := members[l]
		c := linalg.MeanInto(nil, x, idx)
		centroids[l] = c
		var s float64
		for _, i := range idx {
			s += linalg.Dist(x[i], c)
		}
		scatter[l] = s / float64(len(idx))
	}
	var total float64
	for _, i := range ids {
		worst := 0.0
		for _, j := range ids {
			if i == j {
				continue
			}
			d := linalg.Dist(centroids[i], centroids[j])
			if d == 0 {
				return math.Inf(1) // coincident centroids: degenerate
			}
			if r := (scatter[i] + scatter[j]) / d; r > worst {
				worst = r
			}
		}
		total += worst
	}
	return total / float64(len(ids))
}

// CalinskiHarabasz computes the Calinski–Harabasz (variance ratio)
// criterion (higher is better): [B/(k-1)] / [W/(n-k)] with B the
// between-cluster and W the within-cluster sum of squares. It returns 0
// when fewer than two clusters are present or W is zero.
func CalinskiHarabasz(x [][]float64, labels []int) float64 {
	members := clusterIndex(labels)
	k := len(members)
	if k < 2 {
		return 0
	}
	ids := sortedIDs(members)
	var idxAll []int
	for _, l := range ids {
		idxAll = append(idxAll, members[l]...)
	}
	n := len(idxAll)
	if n <= k {
		return 0
	}
	overall := linalg.MeanInto(nil, x, idxAll)
	var between, within float64
	for _, l := range ids {
		idx := members[l]
		c := linalg.MeanInto(nil, x, idx)
		between += float64(len(idx)) * linalg.SqDist(c, overall)
		for _, i := range idx {
			within += linalg.SqDist(x[i], c)
		}
	}
	if within == 0 {
		return 0
	}
	return (between / float64(k-1)) / (within / float64(n-k))
}

// Dunn computes the Dunn index (higher is better): the smallest
// between-cluster single-link distance divided by the largest cluster
// diameter. It is O(n²) and returns 0 when fewer than two clusters are
// present or some cluster has zero diameter spread across all pairs.
func Dunn(x [][]float64, labels []int) float64 {
	members := clusterIndex(labels)
	if len(members) < 2 {
		return 0
	}
	minBetween := math.Inf(1)
	maxDiam := 0.0
	ids := sortedIDs(members)
	for a := 0; a < len(ids); a++ {
		ia := members[ids[a]]
		for _, p := range ia {
			for _, q := range ia {
				if d := linalg.Dist(x[p], x[q]); d > maxDiam {
					maxDiam = d
				}
			}
		}
		for b := a + 1; b < len(ids); b++ {
			for _, p := range ia {
				for _, q := range members[ids[b]] {
					if d := linalg.Dist(x[p], x[q]); d < minBetween {
						minBetween = d
					}
				}
			}
		}
	}
	if maxDiam == 0 {
		return 0
	}
	return minBetween / maxDiam
}
