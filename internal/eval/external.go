package eval

import "sort"

// OverallF computes the Overall F-Measure between a clustering and the
// ground-truth classes, restricted to the evaluation objects in eval (all
// objects when eval is nil). Following the paper's protocol, callers pass
// the objects NOT involved in the supervision given to the algorithm.
//
// For each ground-truth class j the best-matching cluster i is found by the
// pairwise F-measure F(j,i) = 2·n_ij / (|class j| + |cluster i|), and the
// Overall F-Measure is the class-size-weighted average of the best matches.
// Each noise object (cluster label < 0) is treated as its own singleton
// cluster, so unclustered objects can match only classes of size one.
func OverallF(labels, truth []int, eval []int) float64 {
	idx := eval
	if idx == nil {
		idx = make([]int, len(labels))
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return 0
	}
	// Renumber noise objects into singleton clusters.
	clusterOf := make(map[int]int, len(idx))
	next := 0
	remap := map[int]int{}
	for _, o := range idx {
		l := labels[o]
		if l < 0 {
			clusterOf[o] = next
			next++
			continue
		}
		id, ok := remap[l]
		if !ok {
			id = next
			next++
			remap[l] = id
		}
		clusterOf[o] = id
	}
	clusterSize := make([]int, next)
	classSize := map[int]int{}
	inter := map[[2]int]int{} // (class, cluster) -> count
	for _, o := range idx {
		c := clusterOf[o]
		clusterSize[c]++
		classSize[truth[o]]++
		inter[[2]int{truth[o], c}]++
	}
	bestF := map[int]float64{}
	for key, nij := range inter {
		class, cluster := key[0], key[1]
		f := 2 * float64(nij) / float64(classSize[class]+clusterSize[cluster])
		if f > bestF[class] {
			bestF[class] = f
		}
	}
	classes := make([]int, 0, len(classSize))
	for c := range classSize {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	var total float64
	for _, c := range classes {
		total += float64(classSize[c]) / float64(len(idx)) * bestF[c]
	}
	return total
}

// pairCounts tallies the pair-counting contingency (a: same/same, b:
// same/diff, c: diff/same, d: diff/diff) between two labelings over the
// evaluation objects. Noise objects count as singleton clusters.
func pairCounts(labels, truth []int, idx []int) (a, b, c, d float64) {
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			oi, oj := idx[i], idx[j]
			sameL := SameCluster(labels, oi, oj)
			sameT := truth[oi] == truth[oj]
			switch {
			case sameL && sameT:
				a++
			case sameL && !sameT:
				b++
			case !sameL && sameT:
				c++
			default:
				d++
			}
		}
	}
	return
}

// RandIndex computes the Rand index between the clustering and the ground
// truth over the evaluation objects (all when eval is nil).
func RandIndex(labels, truth []int, eval []int) float64 {
	idx := allIdx(labels, eval)
	a, b, c, d := pairCounts(labels, truth, idx)
	total := a + b + c + d
	if total == 0 {
		return 0
	}
	return (a + d) / total
}

// AdjustedRandIndex computes the Hubert–Arabie adjusted Rand index between
// the clustering and the ground truth over the evaluation objects.
func AdjustedRandIndex(labels, truth []int, eval []int) float64 {
	idx := allIdx(labels, eval)
	a, b, c, _ := pairCounts(labels, truth, idx)
	n := float64(len(idx))
	if n < 2 {
		return 0
	}
	pairs := n * (n - 1) / 2
	sumL := a + b // same-cluster pairs
	sumT := a + c // same-class pairs
	expected := sumL * sumT / pairs
	maxIdx := (sumL + sumT) / 2
	if maxIdx == expected {
		return 0
	}
	return (a - expected) / (maxIdx - expected)
}

func allIdx(labels []int, eval []int) []int {
	if eval != nil {
		return eval
	}
	idx := make([]int, len(labels))
	for i := range idx {
		idx[i] = i
	}
	return idx
}
