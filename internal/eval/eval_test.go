package eval

import (
	"math"
	"testing"
	"testing/quick"

	"cvcp/internal/constraints"
)

func TestSameCluster(t *testing.T) {
	labels := []int{0, 0, 1, -1, -1}
	if !SameCluster(labels, 0, 1) {
		t.Error("0,1 share cluster 0")
	}
	if SameCluster(labels, 0, 2) {
		t.Error("0,2 differ")
	}
	if SameCluster(labels, 3, 4) {
		t.Error("two noise objects never share a cluster")
	}
	if SameCluster(labels, 0, 3) {
		t.Error("noise never shares a cluster")
	}
}

func TestConfusion(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	cons := constraints.NewSet()
	cons.Add(0, 1, true)  // satisfied ML
	cons.Add(0, 2, true)  // violated ML
	cons.Add(0, 3, false) // satisfied CL
	cons.Add(2, 3, false) // violated CL
	c := Confusion(labels, cons)
	if c.TPSame != 1 || c.FNSame != 1 || c.TPSplit != 1 || c.FNSplit != 1 {
		t.Errorf("confusion = %+v", c)
	}
}

func TestConstraintFHandComputed(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	cons := constraints.NewSet()
	cons.Add(0, 1, true)
	cons.Add(0, 2, true)
	cons.Add(0, 3, false)
	cons.Add(2, 3, false)
	// Class "same": TP=1, FP=1 (CL 2-3 predicted same), FN=1 -> F = 2/(2+1+1) = 0.5
	// Class "split": TP=1, FP=1 (ML 0-2 predicted split), FN=1 -> F = 0.5
	if got := ConstraintF(labels, cons); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ConstraintF = %v, want 0.5", got)
	}
}

func TestConstraintFPerfect(t *testing.T) {
	labels := []int{0, 0, 1}
	cons := constraints.NewSet()
	cons.Add(0, 1, true)
	cons.Add(0, 2, false)
	if got := ConstraintF(labels, cons); got != 1 {
		t.Errorf("perfect classifier F = %v", got)
	}
}

func TestConstraintFSingleClassPresent(t *testing.T) {
	labels := []int{0, 0, 1}
	onlyML := constraints.NewSet()
	onlyML.Add(0, 1, true)
	if got := ConstraintF(labels, onlyML); got != 1 {
		t.Errorf("ML-only F = %v, want 1 (averaged over the present class only)", got)
	}
	onlyCL := constraints.NewSet()
	onlyCL.Add(0, 2, false)
	if got := ConstraintF(labels, onlyCL); got != 1 {
		t.Errorf("CL-only F = %v, want 1", got)
	}
	if got := ConstraintF(labels, constraints.NewSet()); got != 0 {
		t.Errorf("empty constraint set F = %v, want 0", got)
	}
}

// Property: ConstraintF is within [0,1], and a labeling satisfying all
// constraints scores 1.
func TestConstraintFRange(t *testing.T) {
	f := func(labels [8]uint8, edges [6][2]uint8, kinds uint8) bool {
		lab := make([]int, 8)
		for i, l := range labels {
			lab[i] = int(l%4) - 1 // include noise labels
		}
		cons := constraints.NewSet()
		for i, e := range edges {
			a, b := int(e[0]%8), int(e[1]%8)
			if a == b {
				continue
			}
			cons.Add(a, b, kinds&(1<<uint(i)) != 0)
		}
		got := ConstraintF(lab, cons)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSatisfactionRate(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	cons := constraints.NewSet()
	cons.Add(0, 1, true)
	cons.Add(0, 2, true)
	if got := SatisfactionRate(labels, cons); got != 0.5 {
		t.Errorf("SatisfactionRate = %v", got)
	}
	if got := SatisfactionRate(labels, constraints.NewSet()); got != 0 {
		t.Errorf("empty rate = %v", got)
	}
}

func TestOverallFPerfect(t *testing.T) {
	labels := []int{0, 0, 1, 1, 2, 2}
	truth := []int{5, 5, 7, 7, 9, 9}
	if got := OverallF(labels, truth, nil); got != 1 {
		t.Errorf("OverallF = %v, want 1", got)
	}
}

func TestOverallFHandComputed(t *testing.T) {
	// Classes {0,1,2} and {3,4,5}; clustering merges everything.
	labels := []int{0, 0, 0, 0, 0, 0}
	truth := []int{0, 0, 0, 1, 1, 1}
	// For each class: best F with the single cluster = 2*3/(3+6) = 2/3.
	if got := OverallF(labels, truth, nil); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("OverallF = %v, want 2/3", got)
	}
}

func TestOverallFNoiseSingletons(t *testing.T) {
	// All noise: each object is a singleton cluster. Classes of size 2:
	// best F per class = 2*1/(2+1) = 2/3.
	labels := []int{-1, -1, -1, -1}
	truth := []int{0, 0, 1, 1}
	if got := OverallF(labels, truth, nil); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("OverallF = %v, want 2/3", got)
	}
}

func TestOverallFEvalSubset(t *testing.T) {
	labels := []int{0, 0, 1, 99}
	truth := []int{0, 0, 1, 1}
	// Excluding object 3 (the mislabeled one) gives a perfect score.
	if got := OverallF(labels, truth, []int{0, 1, 2}); got != 1 {
		t.Errorf("OverallF on subset = %v, want 1", got)
	}
	if got := OverallF(labels, truth, []int{}); got != 0 {
		t.Errorf("OverallF on empty subset = %v, want 0", got)
	}
}

// Property: OverallF is within [0,1] and exactly 1 when labels == truth.
func TestOverallFRange(t *testing.T) {
	f := func(labels, truth [10]uint8) bool {
		lab := make([]int, 10)
		tr := make([]int, 10)
		for i := range labels {
			lab[i] = int(labels[i]%4) - 1
			tr[i] = int(truth[i] % 3)
		}
		got := OverallF(lab, tr, nil)
		if got < 0 || got > 1+1e-12 {
			return false
		}
		return math.Abs(OverallF(tr, tr, nil)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandIndex(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	truth := []int{0, 0, 1, 1}
	if got := RandIndex(labels, truth, nil); got != 1 {
		t.Errorf("Rand = %v", got)
	}
	// One object moved: pairs (0,1) same/same, (2,3): labels diff... check range.
	labels2 := []int{0, 0, 0, 1}
	got := RandIndex(labels2, truth, nil)
	if got <= 0 || got >= 1 {
		t.Errorf("Rand = %v, want in (0,1)", got)
	}
}

func TestAdjustedRandIndex(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	if got := AdjustedRandIndex(truth, truth, nil); math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI of identical = %v", got)
	}
	// Single cluster vs 3 classes: ARI = 0 (expected agreement only).
	ones := []int{0, 0, 0, 0, 0, 0}
	if got := AdjustedRandIndex(ones, truth, nil); math.Abs(got) > 1e-12 {
		t.Errorf("ARI of trivial clustering = %v, want 0", got)
	}
}

// Property: ARI <= 1 always, with equality for identical partitions.
func TestARIBound(t *testing.T) {
	f := func(labels, truth [9]uint8) bool {
		lab := make([]int, 9)
		tr := make([]int, 9)
		for i := range labels {
			lab[i] = int(labels[i] % 4)
			tr[i] = int(truth[i] % 3)
		}
		return AdjustedRandIndex(lab, tr, nil) <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSilhouetteTwoTightClusters(t *testing.T) {
	x := [][]float64{{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}}
	labels := []int{0, 0, 1, 1}
	got := Silhouette(x, labels)
	if got < 0.9 || got > 1 {
		t.Errorf("Silhouette = %v, want near 1", got)
	}
}

func TestSilhouetteBadPartition(t *testing.T) {
	x := [][]float64{{0, 0}, {0.1, 0}, {10, 0}, {10.1, 0}}
	labels := []int{0, 1, 0, 1} // pairs split across the gap
	got := Silhouette(x, labels)
	if got > 0 {
		t.Errorf("Silhouette = %v, want <= 0", got)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	if got := Silhouette(x, []int{0, 0, 0}); got != 0 {
		t.Errorf("single cluster = %v, want 0", got)
	}
	if got := Silhouette(x, []int{-1, -1, -1}); got != 0 {
		t.Errorf("all noise = %v, want 0", got)
	}
	// Singleton clusters contribute s=0.
	if got := Silhouette(x, []int{0, 1, 2}); got != 0 {
		t.Errorf("all singletons = %v, want 0", got)
	}
}

// Property: the silhouette coefficient is within [-1, 1].
func TestSilhouetteRange(t *testing.T) {
	f := func(pts [8][2]float64, labels [8]uint8) bool {
		x := make([][]float64, 8)
		lab := make([]int, 8)
		for i := range pts {
			a := math.Mod(pts[i][0], 100)
			b := math.Mod(pts[i][1], 100)
			if math.IsNaN(a) {
				a = 0
			}
			if math.IsNaN(b) {
				b = 0
			}
			x[i] = []float64{a, b}
			lab[i] = int(labels[i]%4) - 1
		}
		got := Silhouette(x, lab)
		return got >= -1-1e-9 && got <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
