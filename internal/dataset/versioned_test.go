package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func batch(rows [][]float64, labels []int) RowBatch {
	return RowBatch{Rows: rows, Labels: labels}
}

func TestVersionedAppendAndSnapshot(t *testing.T) {
	v := NewVersioned("grow", true)
	if v.Version() != 0 || v.N() != 0 {
		t.Fatalf("fresh dataset: version=%d n=%d, want 0/0", v.Version(), v.N())
	}
	ver, err := v.Append(batch([][]float64{{1, 2}, {3, 4}}, []int{0, 1}))
	if err != nil || ver != 1 {
		t.Fatalf("first append: version=%d err=%v", ver, err)
	}
	ver, err = v.Append(batch([][]float64{{5, 6}}, []int{0}))
	if err != nil || ver != 2 {
		t.Fatalf("second append: version=%d err=%v", ver, err)
	}
	if v.N() != 3 || v.Dims() != 2 {
		t.Fatalf("n=%d dims=%d, want 3/2", v.N(), v.Dims())
	}

	s1, err := v.Snapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.N() != 2 || s1.Y[1] != 1 {
		t.Fatalf("snapshot v1: n=%d y=%v", s1.N(), s1.Y)
	}
	s2, err := v.Snapshot(2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.N() != 3 || s2.X[2][0] != 5 {
		t.Fatalf("snapshot v2: n=%d x2=%v", s2.N(), s2.X[2])
	}
	// Snapshots are copies: mutating one must not leak into the log.
	s1.X[0][0] = 99
	s3, _ := v.Snapshot(2)
	if s3.X[0][0] != 1 {
		t.Fatalf("snapshot aliases the row log: got %v", s3.X[0][0])
	}

	if _, err := v.Snapshot(3); err == nil {
		t.Fatal("snapshot of a future version succeeded")
	}
	if _, err := v.Snapshot(0); err == nil {
		t.Fatal("snapshot of the empty version succeeded")
	}
}

func TestVersionedAppendRejects(t *testing.T) {
	v := NewVersioned("strict", false)
	cases := []RowBatch{
		{}, // empty
		{Rows: [][]float64{{1}}, Labels: []int{0}}, // labeled batch, unlabeled dataset
		{Rows: [][]float64{{math.NaN()}}},          // non-finite
		{Rows: [][]float64{{}}},                    // zero-dim
	}
	for i, b := range cases {
		if _, err := v.Append(b); err == nil {
			t.Errorf("case %d: append succeeded, want error", i)
		}
	}
	if _, err := v.Append(batch([][]float64{{1, 2}}, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Append(batch([][]float64{{1}}, nil)); err == nil {
		t.Error("dimension mismatch append succeeded")
	}
	lv := NewVersioned("lab", true)
	if _, err := lv.Append(batch([][]float64{{1}}, nil)); err == nil {
		t.Error("unlabeled batch into labeled dataset succeeded")
	}
}

// TestStableFoldUnderAppend is the tentpole's fold-stability contract:
// appending rows never moves an existing row to a different fold, and a
// batch of B rows dirties at most min(B, nFolds) folds.
func TestStableFoldUnderAppend(t *testing.T) {
	const nFolds = 5
	before := StableFoldIndices(23, nFolds)
	after := StableFoldIndices(23+7, nFolds)
	for f := 0; f < nFolds; f++ {
		if len(before[f]) > len(after[f]) {
			t.Fatalf("fold %d shrank under append", f)
		}
		for i, idx := range before[f] {
			if after[f][i] != idx {
				t.Fatalf("fold %d: row %d moved to a different position (%d vs %d)", f, idx, after[f][i], idx)
			}
		}
	}
	// Count dirtied folds for a 2-row append to a 23-row dataset.
	dirty := map[int]bool{}
	for i := 23; i < 25; i++ {
		dirty[StableFold(i, nFolds)] = true
	}
	if len(dirty) > 2 {
		t.Fatalf("2-row append dirtied %d folds", len(dirty))
	}
}

func TestHashRowsContentAddressing(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := []int{0, 1, 0}
	h1 := HashRows(x, y, []int{0, 2})
	h2 := HashRows(x, y, []int{0, 2})
	if h1 != h2 {
		t.Fatal("hash not deterministic")
	}
	if h1 == HashRows(x, y, []int{0, 1}) {
		t.Fatal("different row sets hash equal")
	}
	if h1 == HashRows(x, nil, []int{0, 2}) {
		t.Fatal("labeled and unlabeled rows hash equal")
	}
	x2 := [][]float64{{1, 2}, {3, 4}, {5, 6.0000000001}}
	if h1 == HashRows(x2, y, []int{0, 2}) {
		t.Fatal("different row content hashes equal")
	}

	// A fold hash is unchanged when an append leaves the fold untouched.
	ds := MustNew("h", x, y)
	grown := MustNew("h2", append(append([][]float64{}, x...), []float64{7, 8}), append(append([]int{}, y...), 1))
	// With nFolds=3 the appended row 3 lands in fold 0, leaving fold 1 untouched.
	if ds.HashFold(1, 3) != grown.HashFold(1, 3) {
		t.Fatal("untouched fold hash changed under append")
	}
	if ds.HashFold(0, 3) == grown.HashFold(0, 3) {
		t.Fatal("dirtied fold hash unchanged under append")
	}
}

func TestRowBatchRoundTrip(t *testing.T) {
	b := RowBatch{
		Rows:   [][]float64{{0.1, math.Pi}, {1e-300, -2.5}},
		Labels: []int{3, -1},
	}
	var buf bytes.Buffer
	if err := EncodeRowBatch(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRowBatch(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || len(got.Labels) != 2 {
		t.Fatalf("round trip shape: %d rows %d labels", len(got.Rows), len(got.Labels))
	}
	for i := range b.Rows {
		for j := range b.Rows[i] {
			if math.Float64bits(got.Rows[i][j]) != math.Float64bits(b.Rows[i][j]) {
				t.Fatalf("row %d attr %d not bit-identical: % x vs % x", i, j, got.Rows[i][j], b.Rows[i][j])
			}
		}
		if got.Labels[i] != b.Labels[i] {
			t.Fatalf("label %d: %d vs %d", i, got.Labels[i], b.Labels[i])
		}
	}

	// Unlabeled round trip.
	u := RowBatch{Rows: [][]float64{{1}, {2}}}
	buf.Reset()
	if err := EncodeRowBatch(&buf, u); err != nil {
		t.Fatal(err)
	}
	got, err = DecodeRowBatch(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Labels != nil {
		t.Fatal("unlabeled batch decoded with labels")
	}
}

func TestDecodeRowBatchRejects(t *testing.T) {
	cases := []string{
		"",
		"not-a-batch\n1,2\n",
		"cvcp-rowbatch/1\n1,2\n",           // missing kind
		"cvcp-rowbatch/1 maybe\n1,2\n",     // bad kind
		"cvcp-rowbatch/1 unlabeled\nx,y\n", // non-numeric attrs
		"cvcp-rowbatch/1 unlabeled\n",      // no rows
		"cvcp-rowbatch/1 labeled\n1,zz\n",  // bad label
	}
	for i, in := range cases {
		if _, err := DecodeRowBatch(strings.NewReader(in), 0); err == nil {
			t.Errorf("case %d (%q): decode succeeded, want error", i, in)
		}
	}
	// Size limit enforcement.
	big := "cvcp-rowbatch/1 unlabeled\n" + strings.Repeat("1,2\n", 100)
	if _, err := DecodeRowBatch(strings.NewReader(big), 16); err == nil {
		t.Error("oversized batch decoded under a 16-byte limit")
	}
}
