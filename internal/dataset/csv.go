package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the dataset as CSV rows of the form
// attr1,attr2,...,attrD[,label]. The label column is emitted only when the
// dataset is labeled.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	dim := d.Dims()
	rec := make([]string, 0, dim+1)
	for i, row := range d.X {
		rec = rec[:0]
		for _, v := range row {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if d.Y != nil {
			rec = append(rec, strconv.Itoa(d.Y[i]))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the dataset to the named file.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV parses a dataset from CSV. When hasLabel is true the last column
// is interpreted as an integer class label; otherwise all columns are
// attributes and the returned dataset is unlabeled.
func ReadCSV(name string, r io.Reader, hasLabel bool) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var x [][]float64
	var y []int
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset %q: reading CSV: %w", name, err)
		}
		line++
		nattr := len(rec)
		if hasLabel {
			nattr--
		}
		if nattr <= 0 {
			return nil, fmt.Errorf("dataset %q: line %d has no attributes", name, line)
		}
		row := make([]float64, nattr)
		for j := 0; j < nattr; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset %q: line %d column %d: %w", name, line, j+1, err)
			}
			row[j] = v
		}
		x = append(x, row)
		if hasLabel {
			lab, err := strconv.Atoi(rec[nattr])
			if err != nil {
				return nil, fmt.Errorf("dataset %q: line %d label: %w", name, line, err)
			}
			y = append(y, lab)
		}
	}
	return New(name, x, y)
}

// LoadCSV reads a dataset from the named file.
func LoadCSV(name, path string, hasLabel bool) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f, hasLabel)
}
