package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the dataset as CSV rows of the form
// attr1,attr2,...,attrD[,label]. The label column is emitted only when the
// dataset is labeled.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	dim := d.Dims()
	rec := make([]string, 0, dim+1)
	for i, row := range d.X {
		rec = rec[:0]
		for _, v := range row {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if d.Y != nil {
			rec = append(rec, strconv.Itoa(d.Y[i]))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing CSV: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the dataset to the named file.
func (d *Dataset) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV parses a dataset from CSV. When hasLabel is true the last column
// is interpreted as an integer class label; otherwise all columns are
// attributes and the returned dataset is unlabeled.
func ReadCSV(name string, r io.Reader, hasLabel bool) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var x [][]float64
	var y []int
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset %q: reading CSV: %w", name, err)
		}
		line++
		nattr := len(rec)
		if hasLabel {
			nattr--
		}
		if nattr <= 0 {
			return nil, fmt.Errorf("dataset %q: line %d has no attributes", name, line)
		}
		row := make([]float64, nattr)
		for j := 0; j < nattr; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset %q: line %d column %d: %w", name, line, j+1, err)
			}
			row[j] = v
		}
		x = append(x, row)
		if hasLabel {
			lab, err := strconv.Atoi(rec[nattr])
			if err != nil {
				return nil, fmt.Errorf("dataset %q: line %d label: %w", name, line, err)
			}
			y = append(y, lab)
		}
	}
	return New(name, x, y)
}

// SizeError reports that a CSV input exceeded the caller's byte limit.
// Callers serving untrusted uploads (cmd/cvcpd) detect it with errors.As to
// distinguish "too large" from "malformed".
type SizeError struct {
	Limit int64 // the byte limit that was exceeded
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("dataset: CSV input exceeds %d bytes", e.Limit)
}

// limitReader yields at most limit bytes from r; a read past the limit
// fails with *SizeError. Unlike io.LimitReader it distinguishes an input
// that ends exactly at the limit (fine) from one with more data (error).
type limitReader struct {
	r         io.Reader
	remaining int64
	limit     int64
}

func (l *limitReader) Read(p []byte) (int, error) {
	if l.remaining <= 0 {
		// The limit is spent: any further byte means the input is too
		// large, clean EOF means it fit exactly.
		var b [1]byte
		for {
			n, err := l.r.Read(b[:])
			if n > 0 {
				return 0, &SizeError{Limit: l.limit}
			}
			if err != nil {
				return 0, err
			}
		}
	}
	if int64(len(p)) > l.remaining {
		p = p[:l.remaining]
	}
	n, err := l.r.Read(p)
	l.remaining -= int64(n)
	return n, err
}

// ReadCSVLimited is ReadCSV with a byte cap on the input: when r holds more
// than maxBytes bytes the parse fails with a *SizeError (wrapped, so use
// errors.As). maxBytes <= 0 means no limit. Servers use this so an
// oversized upload fails fast with a typed error instead of exhausting
// memory.
func ReadCSVLimited(name string, r io.Reader, hasLabel bool, maxBytes int64) (*Dataset, error) {
	if maxBytes <= 0 {
		return ReadCSV(name, r, hasLabel)
	}
	return ReadCSV(name, &limitReader{r: r, remaining: maxBytes, limit: maxBytes}, hasLabel)
}

// LoadCSV reads a dataset from the named file.
func LoadCSV(name, path string, hasLabel bool) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f, hasLabel)
}
