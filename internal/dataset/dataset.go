// Package dataset defines the in-memory dataset representation shared by the
// clustering algorithms, the CVCP framework and the experiment harness, along
// with CSV import/export and common preprocessing (z-score standardization,
// stratified sampling).
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cvcp/internal/linalg"
)

// Dataset is a numeric dataset with optional integer class labels.
// Y[i] is the ground-truth class of object i; label -1 means "unlabeled".
// All rows of X share the same dimensionality.
type Dataset struct {
	Name string
	X    [][]float64
	Y    []int
}

// New validates x (and y, if non-nil) and wraps them in a Dataset.
func New(name string, x [][]float64, y []int) (*Dataset, error) {
	if len(x) == 0 {
		return nil, fmt.Errorf("dataset %q: no objects", name)
	}
	d := len(x[0])
	if d == 0 {
		return nil, fmt.Errorf("dataset %q: zero-dimensional objects", name)
	}
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("dataset %q: row %d has %d attributes, want %d", name, i, len(row), d)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("dataset %q: row %d attribute %d is not finite", name, i, j)
			}
		}
	}
	if y != nil && len(y) != len(x) {
		return nil, fmt.Errorf("dataset %q: %d labels for %d objects", name, len(y), len(x))
	}
	return &Dataset{Name: name, X: x, Y: y}, nil
}

// MustNew is New but panics on error; intended for tests and generators whose
// inputs are constructed programmatically.
func MustNew(name string, x [][]float64, y []int) *Dataset {
	d, err := New(name, x, y)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of objects.
func (d *Dataset) N() int { return len(d.X) }

// Dims returns the number of attributes per object.
func (d *Dataset) Dims() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Labeled reports whether the dataset carries ground-truth labels.
func (d *Dataset) Labeled() bool { return d.Y != nil }

// Classes returns the sorted distinct labels present in Y (excluding -1).
func (d *Dataset) Classes() []int {
	if d.Y == nil {
		return nil
	}
	seen := map[int]bool{}
	for _, y := range d.Y {
		if y >= 0 {
			seen[y] = true
		}
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// NumClasses returns the number of distinct non-negative labels.
func (d *Dataset) NumClasses() int { return len(d.Classes()) }

// ClassIndices returns, for each class label in Classes() order, the indices
// of the objects carrying that label.
func (d *Dataset) ClassIndices() map[int][]int {
	out := map[int][]int{}
	for i, y := range d.Y {
		if y >= 0 {
			out[y] = append(out[y], i)
		}
	}
	return out
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{Name: d.Name, X: linalg.CloneMatrix(d.X)}
	if d.Y != nil {
		c.Y = append([]int(nil), d.Y...)
	}
	return c
}

// Standardize z-scores every attribute in place: (x - mean) / std, with
// constant attributes left centered at zero. It returns the receiver for
// chaining.
func (d *Dataset) Standardize() *Dataset {
	n, dim := d.N(), d.Dims()
	for j := 0; j < dim; j++ {
		var mean float64
		for i := 0; i < n; i++ {
			mean += d.X[i][j]
		}
		mean /= float64(n)
		var varsum float64
		for i := 0; i < n; i++ {
			v := d.X[i][j] - mean
			varsum += v * v
		}
		std := math.Sqrt(varsum / float64(n))
		if std == 0 {
			std = 1
		}
		for i := 0; i < n; i++ {
			d.X[i][j] = (d.X[i][j] - mean) / std
		}
	}
	return d
}

// SampleLabels returns the indices of a uniform random sample containing
// frac (0 < frac <= 1) of all objects, without replacement; the sampled
// indices are the "labeled objects provided by the user" of the paper's
// Scenario I. At least two objects are always returned so that at least one
// constraint can be derived.
func (d *Dataset) SampleLabels(r *rand.Rand, frac float64) []int {
	n := d.N()
	k := int(math.Round(frac * float64(n)))
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	p := r.Perm(n)
	idx := append([]int(nil), p[:k]...)
	sort.Ints(idx)
	return idx
}

// StratifiedSample returns frac of the objects of each class (at least one
// per class), mirroring the paper's constraint-pool construction that draws
// 10% of the objects from each class.
func (d *Dataset) StratifiedSample(r *rand.Rand, frac float64) []int {
	if d.Y == nil {
		panic("dataset: StratifiedSample requires labels")
	}
	var out []int
	byClass := d.ClassIndices()
	classes := d.Classes()
	for _, c := range classes {
		members := byClass[c]
		k := int(math.Round(frac * float64(len(members))))
		if k < 1 {
			k = 1
		}
		if k > len(members) {
			k = len(members)
		}
		p := r.Perm(len(members))
		for _, j := range p[:k] {
			out = append(out, members[j])
		}
	}
	sort.Ints(out)
	return out
}
