package dataset

import (
	"bytes"
	"math"
	"testing"
)

// FuzzRowBatchDecode drives DecodeRowBatch with arbitrary bytes: it must
// never panic, and any batch it accepts must satisfy the batch invariants
// and re-encode/re-decode bit-identically (the property the cell cache's
// content addressing depends on).
func FuzzRowBatchDecode(f *testing.F) {
	var seed bytes.Buffer
	_ = EncodeRowBatch(&seed, RowBatch{Rows: [][]float64{{1.5, -2}, {0.25, 3}}, Labels: []int{0, 1}})
	f.Add(seed.Bytes())
	seed.Reset()
	_ = EncodeRowBatch(&seed, RowBatch{Rows: [][]float64{{1e-300}, {math.Pi}}})
	f.Add(seed.Bytes())
	f.Add([]byte("cvcp-rowbatch/1 labeled\n1,2,3\n"))
	f.Add([]byte("cvcp-rowbatch/1 unlabeled\n"))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeRowBatch(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("decoded batch violates invariants: %v", err)
		}
		var buf bytes.Buffer
		if err := EncodeRowBatch(&buf, b); err != nil {
			t.Fatalf("re-encoding a decoded batch: %v", err)
		}
		again, err := DecodeRowBatch(bytes.NewReader(buf.Bytes()), 0)
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if len(again.Rows) != len(b.Rows) || (again.Labels == nil) != (b.Labels == nil) {
			t.Fatalf("round trip changed shape: %d/%d rows", len(again.Rows), len(b.Rows))
		}
		for i := range b.Rows {
			for j := range b.Rows[i] {
				if math.Float64bits(again.Rows[i][j]) != math.Float64bits(b.Rows[i][j]) {
					t.Fatalf("row %d attr %d not bit-identical after round trip", i, j)
				}
			}
			if b.Labels != nil && again.Labels[i] != b.Labels[i] {
				t.Fatalf("label %d changed after round trip", i)
			}
		}
	})
}
