package dataset

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"cvcp/internal/stats"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("empty", nil, nil); err == nil {
		t.Error("expected error for empty dataset")
	}
	if _, err := New("ragged", [][]float64{{1, 2}, {3}}, nil); err == nil {
		t.Error("expected error for ragged rows")
	}
	if _, err := New("nan", [][]float64{{math.NaN()}}, nil); err == nil {
		t.Error("expected error for NaN")
	}
	if _, err := New("inf", [][]float64{{math.Inf(1)}}, nil); err == nil {
		t.Error("expected error for Inf")
	}
	if _, err := New("labels", [][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("expected error for label count mismatch")
	}
	ds, err := New("ok", [][]float64{{1, 2}, {3, 4}}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.Dims() != 2 || !ds.Labeled() {
		t.Errorf("N=%d Dims=%d Labeled=%v", ds.N(), ds.Dims(), ds.Labeled())
	}
}

func TestClassQueries(t *testing.T) {
	ds := MustNew("t", [][]float64{{0}, {1}, {2}, {3}}, []int{2, 0, 2, -1})
	cls := ds.Classes()
	if len(cls) != 2 || cls[0] != 0 || cls[1] != 2 {
		t.Errorf("Classes = %v", cls)
	}
	if ds.NumClasses() != 2 {
		t.Errorf("NumClasses = %d", ds.NumClasses())
	}
	byClass := ds.ClassIndices()
	if len(byClass[2]) != 2 || byClass[2][0] != 0 || byClass[2][1] != 2 {
		t.Errorf("ClassIndices = %v", byClass)
	}
}

func TestStandardize(t *testing.T) {
	ds := MustNew("t", [][]float64{{1, 5}, {3, 5}}, nil)
	ds.Standardize()
	// First attribute: mean 2, population std 1 -> values ±1.
	if ds.X[0][0] != -1 || ds.X[1][0] != 1 {
		t.Errorf("standardized = %v", ds.X)
	}
	// Constant attribute: centered, not divided by zero.
	if ds.X[0][1] != 0 || ds.X[1][1] != 0 {
		t.Errorf("constant attribute = %v %v", ds.X[0][1], ds.X[1][1])
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := MustNew("t", [][]float64{{1}}, []int{5})
	c := ds.Clone()
	c.X[0][0] = 99
	c.Y[0] = 7
	if ds.X[0][0] != 1 || ds.Y[0] != 5 {
		t.Error("Clone shares storage")
	}
}

func TestSampleLabels(t *testing.T) {
	x := make([][]float64, 40)
	y := make([]int, 40)
	for i := range x {
		x[i] = []float64{float64(i)}
		y[i] = i % 4
	}
	ds := MustNew("t", x, y)
	r := stats.NewRand(1)
	idx := ds.SampleLabels(r, 0.25)
	if len(idx) != 10 {
		t.Errorf("sampled %d objects, want 10", len(idx))
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Error("indices not sorted/unique")
		}
	}
	// Tiny fractions still return at least two objects.
	if got := ds.SampleLabels(r, 0.001); len(got) != 2 {
		t.Errorf("minimum sample = %d, want 2", len(got))
	}
}

func TestStratifiedSample(t *testing.T) {
	x := make([][]float64, 30)
	y := make([]int, 30)
	for i := range x {
		x[i] = []float64{float64(i)}
		y[i] = i / 10 // 3 classes of 10
	}
	ds := MustNew("t", x, y)
	idx := ds.StratifiedSample(stats.NewRand(2), 0.2)
	counts := map[int]int{}
	for _, i := range idx {
		counts[y[i]]++
	}
	for c := 0; c < 3; c++ {
		if counts[c] != 2 {
			t.Errorf("class %d sampled %d times, want 2", c, counts[c])
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := MustNew("rt", [][]float64{{1.5, -2}, {0.25, 3}}, []int{1, 0})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("rt", &buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || back.Dims() != 2 {
		t.Fatalf("shape %dx%d", back.N(), back.Dims())
	}
	for i := range ds.X {
		for j := range ds.X[i] {
			if ds.X[i][j] != back.X[i][j] {
				t.Errorf("X[%d][%d] = %v, want %v", i, j, back.X[i][j], ds.X[i][j])
			}
		}
		if ds.Y[i] != back.Y[i] {
			t.Errorf("Y[%d] = %d, want %d", i, back.Y[i], ds.Y[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("bad", strings.NewReader("a,b\n"), false); err == nil {
		t.Error("expected parse error for non-numeric attribute")
	}
	if _, err := ReadCSV("bad", strings.NewReader("1.0,x\n"), true); err == nil {
		t.Error("expected parse error for non-integer label")
	}
	if _, err := ReadCSV("empty", strings.NewReader(""), false); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := ReadCSV("labelonly", strings.NewReader("1\n"), true); err == nil {
		t.Error("expected error when only a label column exists")
	}
}

func TestReadCSVUnlabeled(t *testing.T) {
	ds, err := ReadCSV("u", strings.NewReader("1,2\n3,4\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Labeled() {
		t.Error("unlabeled dataset reports labels")
	}
	if ds.N() != 2 || ds.Dims() != 2 {
		t.Errorf("shape %dx%d", ds.N(), ds.Dims())
	}
}

func TestReadCSVLimited(t *testing.T) {
	csvData := "1.0,2.0,0\n3.0,4.0,1\n"

	// Limit above the input size: parses normally.
	ds, err := ReadCSVLimited("ok", strings.NewReader(csvData), true, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 {
		t.Fatalf("N = %d, want 2", ds.N())
	}

	// Limit exactly the input size: still fine.
	if _, err := ReadCSVLimited("exact", strings.NewReader(csvData), true, int64(len(csvData))); err != nil {
		t.Fatalf("input at exactly the limit should parse, got %v", err)
	}

	// Limit below the input size: typed *SizeError, detectable via errors.As.
	_, err = ReadCSVLimited("big", strings.NewReader(csvData), true, int64(len(csvData))-1)
	var se *SizeError
	if !errors.As(err, &se) {
		t.Fatalf("want *SizeError, got %v", err)
	}
	if se.Limit != int64(len(csvData))-1 {
		t.Fatalf("SizeError.Limit = %d, want %d", se.Limit, len(csvData)-1)
	}

	// Zero limit means unlimited.
	if _, err := ReadCSVLimited("nolimit", strings.NewReader(csvData), true, 0); err != nil {
		t.Fatalf("maxBytes <= 0 should be unlimited, got %v", err)
	}

	// Malformed CSV under the limit is a parse error, not a SizeError.
	_, err = ReadCSVLimited("bad", strings.NewReader("not,a,number\n"), true, 1024)
	if err == nil || errors.As(err, &se) {
		t.Fatalf("want a parse error, got %v", err)
	}
}
