package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

// Versioned is an append-only dataset: an immutable row log with monotone
// version numbers. Version 0 is the empty dataset; every Append of a
// non-empty row batch produces the next version. Rows are never mutated or
// removed, so row index i identifies the same object in every version that
// contains it — the property the stable fold assignment (StableFold) and the
// content-addressed cell cache build on.
type Versioned struct {
	name     string
	hasLabel bool
	dims     int // 0 until the first append fixes the dimensionality
	rows     [][]float64
	labels   []int
	// counts[v-1] is the total number of rows at version v; version 0 has
	// no entry (zero rows).
	counts []int
}

// NewVersioned returns an empty versioned dataset at version 0. The
// dimensionality is fixed by the first appended batch.
func NewVersioned(name string, hasLabel bool) *Versioned {
	return &Versioned{name: name, hasLabel: hasLabel}
}

// Name returns the dataset name.
func (v *Versioned) Name() string { return v.name }

// HasLabel reports whether rows carry an integer class label.
func (v *Versioned) HasLabel() bool { return v.hasLabel }

// Version returns the current (latest) version number.
func (v *Versioned) Version() int { return len(v.counts) }

// N returns the number of rows at the current version.
func (v *Versioned) N() int { return len(v.rows) }

// Dims returns the dimensionality, or 0 before the first append.
func (v *Versioned) Dims() int { return v.dims }

// NAt returns the number of rows at the given version.
func (v *Versioned) NAt(version int) (int, error) {
	if version < 0 || version > len(v.counts) {
		return 0, fmt.Errorf("dataset %q: no version %d (latest is %d)", v.name, version, len(v.counts))
	}
	if version == 0 {
		return 0, nil
	}
	return v.counts[version-1], nil
}

// CanAppend reports whether Append would accept the batch, without
// mutating the log — callers that must persist a batch before committing
// it (the server's durable append path) validate up front so a rejected
// batch never leaves a record behind.
func (v *Versioned) CanAppend(b RowBatch) error {
	if len(b.Rows) == 0 {
		return fmt.Errorf("dataset %q: empty row batch", v.name)
	}
	if v.hasLabel != (b.Labels != nil) {
		if v.hasLabel {
			return fmt.Errorf("dataset %q: labeled dataset, unlabeled batch", v.name)
		}
		return fmt.Errorf("dataset %q: unlabeled dataset, labeled batch", v.name)
	}
	if b.Labels != nil && len(b.Labels) != len(b.Rows) {
		return fmt.Errorf("dataset %q: %d labels for %d rows", v.name, len(b.Labels), len(b.Rows))
	}
	dims := v.dims
	if dims == 0 {
		dims = len(b.Rows[0])
		if dims == 0 {
			return fmt.Errorf("dataset %q: zero-dimensional rows", v.name)
		}
	}
	for i, row := range b.Rows {
		if len(row) != dims {
			return fmt.Errorf("dataset %q: batch row %d has %d attributes, want %d", v.name, i, len(row), dims)
		}
		for j, x := range row {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("dataset %q: batch row %d attribute %d is not finite", v.name, i, j)
			}
		}
	}
	return nil
}

// Append validates and appends one row batch, returning the new version
// number. The batch's rows are deep-copied, so callers may reuse their
// buffers. An empty batch is an error: versions are defined by the rows
// they add.
func (v *Versioned) Append(b RowBatch) (int, error) {
	if err := v.CanAppend(b); err != nil {
		return 0, err
	}
	if v.dims == 0 {
		v.dims = len(b.Rows[0])
	}
	for _, row := range b.Rows {
		v.rows = append(v.rows, append([]float64(nil), row...))
	}
	if v.hasLabel {
		v.labels = append(v.labels, b.Labels...)
	}
	v.counts = append(v.counts, len(v.rows))
	return len(v.counts), nil
}

// Snapshot materializes the dataset as of the given version as an ordinary
// Dataset (a deep copy — snapshots never alias the log, so in-place
// preprocessing of one cannot corrupt another). A snapshot is bit-identical
// to a Dataset built from scratch out of the same row batches.
func (v *Versioned) Snapshot(version int) (*Dataset, error) {
	n, err := v.NAt(version)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("dataset %q: version %d has no rows", v.name, version)
	}
	x := make([][]float64, n)
	for i := range x {
		x[i] = append([]float64(nil), v.rows[i]...)
	}
	var y []int
	if v.hasLabel {
		y = append([]int(nil), v.labels[:n]...)
	}
	return New(fmt.Sprintf("%s@v%d", v.name, version), x, y)
}

// StableFold maps row index i to its cross-validation fold under nFolds
// folds. The assignment depends only on the row index, so it is stable
// under append: growing the dataset never moves an existing row to a
// different fold, and a batch of B appended rows dirties at most
// min(B, nFolds) folds.
func StableFold(i, nFolds int) int { return i % nFolds }

// StableFoldIndices partitions row indices [0, n) into nFolds folds by
// StableFold, each fold's indices in ascending order.
func StableFoldIndices(n, nFolds int) [][]int {
	out := make([][]int, nFolds)
	for f := range out {
		out[f] = []int{}
	}
	for i := 0; i < n; i++ {
		f := StableFold(i, nFolds)
		out[f] = append(out[f], i)
	}
	return out
}

// HashRows returns the content hash (hex SHA-256) of the identified rows in
// idx order: per row, the IEEE-754 bit patterns of its attributes followed
// by its label (when y is non-nil). Two datasets hash equal for a row set
// exactly when the rows are bit-identical, which makes the hash usable as a
// content address for fold-level cache keys.
func HashRows(x [][]float64, y []int, idx []int) string {
	h := sha256.New()
	var buf [8]byte
	for _, i := range idx {
		for _, v := range x[i] {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
		if y != nil {
			binary.LittleEndian.PutUint64(buf[:], uint64(int64(y[i])))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// HashFold is HashRows over the rows StableFold assigns to fold f among the
// first n rows of the dataset.
func (d *Dataset) HashFold(f, nFolds int) string {
	idx := make([]int, 0, d.N()/nFolds+1)
	for i := 0; i < d.N(); i++ {
		if StableFold(i, nFolds) == f {
			idx = append(idx, i)
		}
	}
	return HashRows(d.X, d.Y, idx)
}
