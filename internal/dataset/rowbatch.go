package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// RowBatch is one append to a versioned dataset: a block of rows and, for
// labeled datasets, their class labels (Labels is nil for unlabeled
// batches). Batches are the unit of durability (one store record each) and
// of the wire/file format below.
type RowBatch struct {
	Rows   [][]float64
	Labels []int
}

// rowBatchMagic heads every encoded row batch; the "/1" is the format
// version so a future layout can be told apart from a truncated file.
const rowBatchMagic = "cvcp-rowbatch/1"

// RowBatchMagic is the leading bytes of every encoded row batch. Callers
// that accept either an encoded batch or plain CSV rows sniff it to pick
// the decoder.
const RowBatchMagic = rowBatchMagic

// Validate checks the batch invariants shared by every producer and
// consumer: at least one row, consistent dimensionality, finite values, and
// a label count matching the row count when labels are present.
func (b RowBatch) Validate() error {
	if len(b.Rows) == 0 {
		return fmt.Errorf("dataset: empty row batch")
	}
	dims := len(b.Rows[0])
	if dims == 0 {
		return fmt.Errorf("dataset: row batch with zero-dimensional rows")
	}
	for i, row := range b.Rows {
		if len(row) != dims {
			return fmt.Errorf("dataset: row batch row %d has %d attributes, want %d", i, len(row), dims)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dataset: row batch row %d attribute %d is not finite", i, j)
			}
		}
	}
	if b.Labels != nil && len(b.Labels) != len(b.Rows) {
		return fmt.Errorf("dataset: row batch has %d labels for %d rows", len(b.Labels), len(b.Rows))
	}
	return nil
}

// EncodeRowBatch writes the batch in its file/wire form: a one-line header
// ("cvcp-rowbatch/1 labeled" or "... unlabeled") followed by the rows as
// CSV in the dataset CSV encoding. Floats are formatted at full precision,
// so DecodeRowBatch of EncodeRowBatch output is bit-identical.
func EncodeRowBatch(w io.Writer, b RowBatch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	kind := "unlabeled"
	if b.Labels != nil {
		kind = "labeled"
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", rowBatchMagic, kind); err != nil {
		return err
	}
	ds := &Dataset{Name: "rowbatch", X: b.Rows, Y: b.Labels}
	return ds.WriteCSV(w)
}

// DecodeRowBatch parses an encoded row batch and validates it. maxBytes
// caps the input size when positive (exceeding it fails with a wrapped
// *SizeError, as in ReadCSVLimited).
func DecodeRowBatch(r io.Reader, maxBytes int64) (RowBatch, error) {
	if maxBytes > 0 {
		r = &limitReader{r: r, remaining: maxBytes, limit: maxBytes}
	}
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return RowBatch{}, fmt.Errorf("dataset: reading row batch header: %w", err)
	}
	fields := strings.Fields(header)
	if len(fields) != 2 || fields[0] != rowBatchMagic {
		return RowBatch{}, fmt.Errorf("dataset: not a row batch (header %q)", strings.TrimSpace(header))
	}
	var labeled bool
	switch fields[1] {
	case "labeled":
		labeled = true
	case "unlabeled":
		labeled = false
	default:
		return RowBatch{}, fmt.Errorf("dataset: row batch header kind %q (want labeled or unlabeled)", fields[1])
	}
	ds, err := ReadCSV("rowbatch", br, labeled)
	if err != nil {
		return RowBatch{}, err
	}
	b := RowBatch{Rows: ds.X, Labels: ds.Y}
	if err := b.Validate(); err != nil {
		return RowBatch{}, err
	}
	return b, nil
}
