// Package metrics is cvcpd's dependency-free instrumentation layer:
// counters, gauges, single-label counter vectors and fixed-bucket
// histograms, exposed in the Prometheus text format (version 0.0.4).
//
// The package follows the client_golang shape without the dependency: a
// process-wide default registry, package-level metric construction at
// init time (New* both constructs and registers), and an http.Handler
// that renders every registered family. Instrumented packages declare
// their metrics as package vars; importing the package is registration.
// All operations are lock-free on the hot path — counters and gauges
// are single atomics, histograms are an atomic counter per bucket plus
// a CAS-loop float sum — so instrumentation never serializes the code
// it observes.
//
// Registration order is preserved in the exposition so scrapes are
// stable and diffable; duplicate names panic at init, the same way a
// duplicate flag name would.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one registered family: everything the registry needs to
// render it.
type metric interface {
	name() string
	write(w io.Writer) error
}

// Registry holds an ordered set of metric families. The zero value is
// ready to use.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]bool
}

// defaultRegistry backs the package-level New* constructors and Handler.
var defaultRegistry = &Registry{}

// Default returns the process-wide registry the package-level
// constructors register into.
func Default() *Registry { return defaultRegistry }

// register adds m, panicking on a duplicate name: metric families are
// declared once, at package init, and a collision is a programming
// error no scrape should paper over.
func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = map[string]bool{}
	}
	if r.byName[m.name()] {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", m.name()))
	}
	r.byName[m.name()] = true
	r.metrics = append(r.metrics, m)
}

// Expose renders every registered family in registration order.
func (r *Registry) Expose(w io.Writer) error {
	r.mu.Lock()
	ms := make([]metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	for _, m := range ms {
		if err := m.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the default registry as a Prometheus scrape endpoint.
func Handler() http.Handler {
	return HandlerFor(defaultRegistry)
}

// HandlerFor serves reg as a Prometheus scrape endpoint.
func HandlerFor(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var b strings.Builder
		if err := reg.Expose(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		io.WriteString(w, b.String())
	})
}

// header writes the # HELP / # TYPE preamble of one family.
func header(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
	return err
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatFloat renders a sample value; Prometheus accepts Go's shortest
// 'g' form, including "+Inf".
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing integer.
type Counter struct {
	nam, hlp string
	v        atomic.Uint64
}

// NewCounter constructs and registers a counter in the default registry.
func NewCounter(name, help string) *Counter {
	c := &Counter{nam: name, hlp: help}
	defaultRegistry.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) name() string { return c.nam }

func (c *Counter) write(w io.Writer) error {
	if err := header(w, c.nam, c.hlp, "counter"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", c.nam, c.v.Load())
	return err
}

// CounterVec is a counter family partitioned by one label. Children are
// created on first use and render sorted by label value.
type CounterVec struct {
	nam, hlp, label string

	mu       sync.Mutex
	children map[string]*Counter
}

// NewCounterVec constructs and registers a one-label counter family in
// the default registry.
func NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{nam: name, hlp: help, label: label, children: map[string]*Counter{}}
	defaultRegistry.register(v)
	return v
}

// With returns the child counter for the given label value, creating it
// on first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

func (v *CounterVec) name() string { return v.nam }

func (v *CounterVec) write(w io.Writer) error {
	if err := header(w, v.nam, v.hlp, "counter"); err != nil {
		return err
	}
	v.mu.Lock()
	values := make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	counts := make([]uint64, len(values))
	for i, val := range values {
		counts[i] = v.children[val].Value()
	}
	v.mu.Unlock()
	for i, val := range values {
		if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", v.nam, v.label, escapeLabel(val), counts[i]); err != nil {
			return err
		}
	}
	return nil
}

// Gauge is an integer that can go up and down.
type Gauge struct {
	nam, hlp string
	v        atomic.Int64
}

// NewGauge constructs and registers a gauge in the default registry.
func NewGauge(name, help string) *Gauge {
	g := &Gauge{nam: name, hlp: help}
	defaultRegistry.register(g)
	return g
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) name() string { return g.nam }

func (g *Gauge) write(w io.Writer) error {
	if err := header(w, g.nam, g.hlp, "gauge"); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", g.nam, g.v.Load())
	return err
}

// GaugeVec is a gauge family partitioned by one label. Children are
// created on first use, render sorted by label value, and can be
// deleted when the labeled entity disappears (the series stops being
// exported, rather than freezing at its last value forever).
type GaugeVec struct {
	nam, hlp, label string

	mu       sync.Mutex
	children map[string]*Gauge
}

// NewGaugeVec constructs and registers a one-label gauge family in the
// default registry.
func NewGaugeVec(name, help, label string) *GaugeVec {
	v := &GaugeVec{nam: name, hlp: help, label: label, children: map[string]*Gauge{}}
	defaultRegistry.register(v)
	return v
}

// With returns the child gauge for the given label value, creating it
// on first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[value]
	if !ok {
		g = &Gauge{}
		v.children[value] = g
	}
	return g
}

// Delete drops the child for the given label value; a later With
// recreates it at zero. Deleting an absent child is a no-op.
func (v *GaugeVec) Delete(value string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.children, value)
}

func (v *GaugeVec) name() string { return v.nam }

func (v *GaugeVec) write(w io.Writer) error {
	if err := header(w, v.nam, v.hlp, "gauge"); err != nil {
		return err
	}
	v.mu.Lock()
	values := make([]string, 0, len(v.children))
	for val := range v.children {
		values = append(values, val)
	}
	sort.Strings(values)
	gauges := make([]int64, len(values))
	for i, val := range values {
		gauges[i] = v.children[val].Value()
	}
	v.mu.Unlock()
	for i, val := range values {
		if _, err := fmt.Fprintf(w, "%s{%s=\"%s\"} %d\n", v.nam, v.label, escapeLabel(val), gauges[i]); err != nil {
			return err
		}
	}
	return nil
}

// Histogram is a fixed-bucket distribution. Buckets are upper bounds
// (exclusive of +Inf, which is implicit); observation is a linear scan
// over at most a few dozen bounds plus two atomics, no locks.
type Histogram struct {
	nam, hlp string
	bounds   []float64
	buckets  []atomic.Uint64 // non-cumulative; bucket i counts v <= bounds[i]
	inf      atomic.Uint64   // v > bounds[len-1]
	count    atomic.Uint64
	sumBits  atomic.Uint64 // float64 bits, updated by CAS
}

// NewHistogram constructs and registers a histogram in the default
// registry. bounds must be sorted ascending and finite.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := range bounds {
		if math.IsNaN(bounds[i]) || math.IsInf(bounds[i], 0) {
			panic(fmt.Sprintf("metrics: %s: bucket bound %v is not finite", name, bounds[i]))
		}
		if i > 0 && bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s: bucket bounds not strictly ascending at %d", name, i))
		}
	}
	h := &Histogram{nam: name, hlp: help, bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]atomic.Uint64, len(h.bounds))
	defaultRegistry.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) name() string { return h.nam }

func (h *Histogram) write(w io.Writer) error {
	if err := header(w, h.nam, h.hlp, "histogram"); err != nil {
		return err
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nam, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.inf.Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nam, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.nam, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.nam, h.count.Load())
	return err
}

// DurationBuckets is the default latency bucket ladder, in seconds:
// 10µs to 60s in roughly 1-2.5-5 steps. It suits everything from WAL
// fsyncs to end-to-end job latency.
var DurationBuckets = []float64{
	0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10, 30, 60,
}
