package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// fresh builds metrics registered into a throwaway registry by
// temporarily swapping the default — tests must not pollute the
// process-wide registry that the server packages register into.
func fresh(t *testing.T) *Registry {
	t.Helper()
	old := defaultRegistry
	reg := &Registry{}
	defaultRegistry = reg
	t.Cleanup(func() { defaultRegistry = old })
	return reg
}

func render(t *testing.T, reg *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.Expose(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	reg := fresh(t)
	c := NewCounter("test_ops_total", "Operations, total.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	got := render(t, reg)
	want := "# HELP test_ops_total Operations, total.\n# TYPE test_ops_total counter\ntest_ops_total 5\n"
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestCounterVecExposition(t *testing.T) {
	reg := fresh(t)
	v := NewCounterVec("test_rejects_total", "Rejects by reason.", "reason")
	v.With("queue_full").Add(3)
	v.With("draining").Inc()
	v.With("queue_full").Inc()
	got := render(t, reg)
	for _, want := range []string{
		`test_rejects_total{reason="draining"} 1`,
		`test_rejects_total{reason="queue_full"} 4`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	// Children render sorted by label value for stable scrapes.
	if strings.Index(got, "draining") > strings.Index(got, "queue_full") {
		t.Errorf("label values not sorted:\n%s", got)
	}
}

func TestGauge(t *testing.T) {
	reg := fresh(t)
	g := NewGauge("test_queue_depth", "Queue depth.")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("Value = %d, want 4", g.Value())
	}
	if !strings.Contains(render(t, reg), "test_queue_depth 4\n") {
		t.Error("gauge sample missing")
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	reg := fresh(t)
	h := NewHistogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.605) > 1e-12 {
		t.Fatalf("Sum = %v, want 5.605", h.Sum())
	}
	got := render(t, reg)
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="1"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_sum 5.605`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
}

func TestHistogramIgnoresNaN(t *testing.T) {
	fresh(t)
	h := NewHistogram("test_nan_seconds", "x", []float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Errorf("NaN observation counted")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	fresh(t)
	NewCounter("test_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	NewGauge("test_dup_total", "y")
}

func TestBadBucketBoundsPanic(t *testing.T) {
	fresh(t)
	for _, bounds := range [][]float64{
		{1, 1},
		{2, 1},
		{math.Inf(1)},
		{math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bounds %v did not panic", bounds)
				}
			}()
			NewHistogram("test_bad_bounds", "x", bounds)
		}()
	}
}

func TestHandler(t *testing.T) {
	reg := fresh(t)
	NewCounter("test_served_total", "x").Inc()
	h := HandlerFor(reg)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("GET status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "test_served_total 1\n") {
		t.Errorf("body missing sample:\n%s", rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/metrics", nil))
	if rr.Code != 405 {
		t.Errorf("POST status %d, want 405", rr.Code)
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := fresh(t)
	v := NewCounterVec("test_esc_total", "x", "who")
	v.With(`a"b\c` + "\n").Inc()
	got := render(t, reg)
	if !strings.Contains(got, `test_esc_total{who="a\"b\\c\n"} 1`) {
		t.Errorf("escaping wrong:\n%s", got)
	}
}

func TestConcurrentObservations(t *testing.T) {
	fresh(t)
	c := NewCounter("test_conc_total", "x")
	h := NewHistogram("test_conc_seconds", "x", []float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-2000) > 1e-9 {
		t.Errorf("histogram sum = %v, want 2000", h.Sum())
	}
}
