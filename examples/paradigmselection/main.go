// Paradigm selection: the paper's future work asks how CVCP "could be
// extended to compare and select alternative clustering methods". This
// example puts three semi-supervised methods — density-based
// FOSC-OPTICSDend, soft-constrained MPCK-Means and hard-constrained
// COP-KMeans — into one Spec grid on the same supervision, each with its
// own parameter range. Select runs the whole (method, parameter, fold) grid
// as one engine dispatch, and the cross-validated constraint F-measure
// chooses both the method and its parameter.
//
//	go run ./examples/paradigmselection
package main

import (
	"context"
	"fmt"
	"log"

	cvcp "cvcp"
	"cvcp/internal/datagen"
)

func main() {
	ds := datagen.Zyeast(2024)
	labeled := ds.SampleLabels(cvcp.NewRand(4), 0.20)
	fmt.Printf("dataset %s: %d objects, %d classes, %d labeled\n\n",
		ds.Name, ds.N(), ds.NumClasses(), len(labeled))

	res, err := cvcp.Select(context.Background(), cvcp.Spec{
		Dataset: ds,
		Grid: cvcp.Grid{
			{Algorithm: cvcp.FOSCOpticsDend{}, Params: cvcp.DefaultMinPtsRange},
			{Algorithm: cvcp.MPCKMeans{}, Params: cvcp.KRange(2, 8)},
			{Algorithm: cvcp.COPKMeans{}, Params: cvcp.KRange(2, 8)},
		},
		Supervision: cvcp.Labels(labeled),
		Options:     cvcp.Options{Seed: 9},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("method               best param   internal score   external OverallF")
	for _, sel := range res.PerCandidate {
		marker := ""
		if sel == res.Winner {
			marker = "  <-- winner"
		}
		fmt.Printf("%-20s %10d   %14.3f   %17.3f%s\n",
			sel.Algorithm, sel.Best.Param, sel.Best.Score,
			cvcp.OverallF(sel.FinalLabels, ds.Y, nil), marker)
	}
	fmt.Println("\n(the external column uses the ground truth and exists only for the demo;")
	fmt.Println("the selection itself used nothing beyond the 20% labeled objects)")
}
