// Gene-expression clustering: the paper's Zyeast workload, where the class
// structure (co-expressed gene groups) is elongated and non-convex, so the
// clustering *paradigm* matters as much as the parameter. The example runs
// CVCP with both FOSC-OPTICSDend and MPCK-Means and shows how the
// cross-validated scores expose that k-means is the wrong model here —
// the negative-correlation phenomenon of the paper's Tables 2 and 4.
//
//	go run ./examples/geneexpression
package main

import (
	"context"
	"fmt"
	"log"

	cvcp "cvcp"
	"cvcp/internal/datagen"
)

func main() {
	ds := datagen.Zyeast(4242)
	labeled := ds.SampleLabels(cvcp.NewRand(8), 0.20)
	fmt.Printf("dataset %s: %d genes × %d conditions, %d expression programs, %d labeled\n\n",
		ds.Name, ds.N(), ds.Dims(), ds.NumClasses(), len(labeled))

	run := func(name string, alg cvcp.Algorithm, params []int) float64 {
		res, err := cvcp.Select(context.Background(), cvcp.Spec{
			Dataset:     ds,
			Grid:        cvcp.Grid{{Algorithm: alg, Params: params}},
			Supervision: cvcp.Labels(labeled),
			Options:     cvcp.Options{Seed: 6},
		})
		if err != nil {
			log.Fatal(err)
		}
		sel := res.Winner
		of := cvcp.OverallF(sel.FinalLabels, ds.Y, nil)
		fmt.Printf("%-16s selected=%d  internal=%.3f  external OverallF=%.3f\n",
			name, sel.Best.Param, sel.Best.Score, of)
		return of
	}

	fosc := run("FOSC-OPTICSDend", cvcp.FOSCOpticsDend{}, cvcp.DefaultMinPtsRange)
	mpck := run("MPCKmeans", cvcp.MPCKMeans{}, cvcp.KRange(2, 8))

	fmt.Println()
	switch {
	case fosc > mpck+0.05:
		fmt.Println("density-based clustering tracks the elongated expression programs;")
		fmt.Println("k-means-style clustering cuts them radially — as in the paper,")
		fmt.Println("Zyeast is a paradigm-selection problem, not just a parameter one.")
	case mpck > fosc+0.05:
		fmt.Println("unexpectedly, the partitional method won on this draw.")
	default:
		fmt.Println("both paradigms performed comparably on this draw.")
	}
}
