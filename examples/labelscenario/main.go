// Label scenario on image-collection-like data: the workload of the paper's
// Figures 5 and 9. A density-based method (FOSC-OPTICSDend) clusters an
// ALOI-like image-descriptor dataset; the open parameter is OPTICS's MinPts,
// for which no classical selection heuristic exists. CVCP selects it from
// 10% labeled objects and the example compares the result against every
// other parameter in the range.
//
//	go run ./examples/labelscenario
package main

import (
	"context"
	"fmt"
	"log"

	cvcp "cvcp"
	"cvcp/internal/datagen"
)

func main() {
	// One set from the ALOI k5 surrogate collection: 125 image descriptors
	// in 144 dimensions, five object categories.
	ds := datagen.ALOI(2014, 1)[0]
	labeled := ds.SampleLabels(cvcp.NewRand(3), 0.10)
	fmt.Printf("dataset %s: %d objects, %d attributes, %d classes, %d labeled\n",
		ds.Name, ds.N(), ds.Dims(), ds.NumClasses(), len(labeled))

	res, err := cvcp.Select(context.Background(), cvcp.Spec{
		Dataset:     ds,
		Grid:        cvcp.Grid{{Algorithm: cvcp.FOSCOpticsDend{}, Params: cvcp.DefaultMinPtsRange}},
		Supervision: cvcp.Labels(labeled),
		Options:     cvcp.Options{Seed: 99},
	})
	if err != nil {
		log.Fatal(err)
	}
	sel := res.Winner

	// For the demo we also report the external quality of every candidate,
	// evaluated only on the objects the user did not label — exactly the
	// paper's protocol. In a real application the ground truth is unknown
	// and only the internal score column exists.
	evalIdx := complement(ds.N(), labeled)
	full := cvcp.ConstraintsFromLabels(labeled, ds.Y)
	fmt.Println("MinPts  internal(CVCP)  external(Overall F)")
	for _, ps := range sel.Scores {
		labels, err := cvcp.FOSCOpticsDend{}.Cluster(ds, full, ps.Param, 1)
		if err != nil {
			log.Fatal(err)
		}
		marker := "  "
		if ps.Param == sel.Best.Param {
			marker = "<-- selected"
		}
		fmt.Printf("%6d  %14.3f  %19.3f %s\n", ps.Param, ps.Score,
			cvcp.OverallF(labels, ds.Y, evalIdx), marker)
	}
}

func complement(n int, drop []int) []int {
	in := make([]bool, n)
	for _, i := range drop {
		in[i] = true
	}
	var out []int
	for i := 0; i < n; i++ {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}
