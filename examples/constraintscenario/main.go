// Constraint scenario: the user cannot label objects but can answer
// "should these two records be grouped together?" questions — the paper's
// Scenario II. The example builds a constraint pool the way the paper does
// (§4.1), feeds a sample of it to CVCP, and shows the transitive-closure
// machinery that keeps the cross-validation leak-free.
//
//	go run ./examples/constraintscenario
package main

import (
	"context"
	"fmt"
	"log"

	cvcp "cvcp"
	"cvcp/internal/datagen"
)

func main() {
	ds := datagen.Wine(77)
	r := cvcp.NewRand(5)

	// Pool: all pairwise constraints among 10% of the objects of each
	// class; the user "answers" 20% of them.
	pool := cvcp.ConstraintPool(r, ds.Y, 0.10)
	given := cvcp.SampleConstraints(r, pool, 0.20)
	fmt.Printf("dataset %s: %d objects; constraint pool %d, given to CVCP %d (%d ML / %d CL)\n",
		ds.Name, ds.N(), pool.Len(), given.Len(), given.NumMustLink(), given.NumCannotLink())

	// The transitive closure adds the implied constraints (Figure 2 of the
	// paper); CVCP computes it internally, shown here for illustration.
	closed, err := cvcp.TransitiveClosure(given)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transitive closure: %d constraints (%d ML / %d CL)\n",
		closed.Len(), closed.NumMustLink(), closed.NumCannotLink())

	res, err := cvcp.Select(context.Background(), cvcp.Spec{
		Dataset:     ds,
		Grid:        cvcp.Grid{{Algorithm: cvcp.MPCKMeans{}, Params: cvcp.KRange(2, 9)}},
		Supervision: cvcp.ConstraintSet(given),
		Options:     cvcp.Options{Seed: 11},
	})
	if err != nil {
		log.Fatal(err)
	}
	sel := res.Winner
	fmt.Println("candidate scores:")
	for _, ps := range sel.Scores {
		fmt.Printf("  k=%d  score=%.3f\n", ps.Param, ps.Score)
	}
	fmt.Printf("selected k = %d (true number of classes: %d)\n",
		sel.Best.Param, ds.NumClasses())
	fmt.Printf("Overall F-Measure on unconstrained objects: %.3f\n",
		cvcp.OverallF(sel.FinalLabels, ds.Y, nil))
}
