// Quickstart: select the number of clusters for MPCK-Means on a small
// synthetic dataset where the user has labeled 10% of the objects
// (Scenario I of the paper), then cluster with the selected parameter.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	cvcp "cvcp"
)

func main() {
	// Three well-separated 2-d blobs of 40 points each; in a real
	// application this is your data matrix.
	r := rand.New(rand.NewSource(1))
	var x [][]float64
	var y []int
	centers := [][]float64{{0, 0}, {8, 0}, {4, 7}}
	for c, ctr := range centers {
		for i := 0; i < 40; i++ {
			x = append(x, []float64{ctr[0] + r.NormFloat64(), ctr[1] + r.NormFloat64()})
			y = append(y, c)
		}
	}
	ds, err := cvcp.NewDataset("quickstart", x, y)
	if err != nil {
		log.Fatal(err)
	}

	// The user labeled 10% of the objects.
	labeled := ds.SampleLabels(cvcp.NewRand(7), 0.10)

	// CVCP through the unified API: one Spec names the candidate grid, the
	// supervision and (implicitly) the cross-validation scorer; Select
	// scores every candidate k, picks the best and clusters with all
	// supervision.
	res, err := cvcp.Select(context.Background(), cvcp.Spec{
		Dataset:     ds,
		Grid:        cvcp.Grid{{Algorithm: cvcp.MPCKMeans{}, Params: cvcp.KRange(2, 8)}},
		Supervision: cvcp.Labels(labeled),
		Options:     cvcp.Options{Seed: 42},
	})
	if err != nil {
		log.Fatal(err)
	}
	sel := res.Winner

	fmt.Println("candidate scores (cross-validated constraint F-measure):")
	for _, ps := range sel.Scores {
		fmt.Printf("  k=%d  score=%.3f\n", ps.Param, ps.Score)
	}
	fmt.Printf("selected k = %d\n", sel.Best.Param)
	fmt.Printf("agreement with ground truth (Overall F-Measure): %.3f\n",
		cvcp.OverallF(sel.FinalLabels, ds.Y, nil))
}
