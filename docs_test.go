package cvcp

// Documentation reference check: README.md and docs/*.md must not name a
// file, directory or command-line flag that does not exist. CI runs this
// as its docs-link gate (and it runs with every `go test ./...`), so docs
// rot — a renamed flag, a moved file, a dead relative link — fails the
// build instead of misleading readers.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var (
	// [text](target) markdown links; targets that are URLs or pure
	// anchors are skipped.
	mdLinkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	// `inline code` spans on fence-stripped text.
	inlineCodeRE = regexp.MustCompile("`([^`\n]+)`")
	// A command-line flag token inside an inline code span.
	flagTokenRE = regexp.MustCompile(`^-[a-z][a-z0-9-]*$`)
	// A repo path token inside an inline code span.
	pathTokenRE = regexp.MustCompile(`^(cmd|internal|docs|examples)(/[A-Za-z0-9_.*-]+)*/?$`)
	// flag declarations in cmd/*/main.go.
	flagDeclRE = regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Uint|Float64|Duration)\("([a-z0-9-]+)"`)
)

// goToolFlags are flags of the go tool itself that the docs may mention
// in test/bench invocations; they are not declared by any command here.
var goToolFlags = map[string]bool{
	"race": true, "bench": true, "run": true, "count": true,
	"v": true, "cover": true,
}

// declaredFlags collects every flag name defined by the repo's commands.
func declaredFlags(t *testing.T) map[string]bool {
	t.Helper()
	mains, err := filepath.Glob("cmd/*/main.go")
	if err != nil || len(mains) == 0 {
		t.Fatalf("no cmd/*/main.go found: %v", err)
	}
	flags := map[string]bool{}
	for _, path := range mains {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range flagDeclRE.FindAllStringSubmatch(string(src), -1) {
			flags[m[1]] = true
		}
	}
	return flags
}

// stripFences removes ``` fenced code blocks: shell transcripts and
// diagrams are illustrative, while inline code and links are the load-
// bearing references this test verifies.
func stripFences(text string) string {
	var out []string
	fenced := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			continue
		}
		if !fenced {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("docs/ holds no markdown files")
	}
	return append(files, docs...)
}

// requiredAPIDocs maps documentation files to the API names they must
// mention: the unified selection surface is the contract every doc is
// organized around, so a rewrite that drops one of these names (or a
// rename that leaves the docs behind) fails the build.
var requiredAPIDocs = map[string][]string{
	"README.md": {
		"Select", "Spec", "Grid", "Supervision", "Scorer",
		"Labels", "ConstraintSet", "CrossValidation", "Bootstrap", "Validity",
	},
	"docs/api.md": {
		"algorithms", "scorer", "bootstrap_rounds", "candidates",
		"Last-Event-ID", "read-header-timeout", "read-timeout", "idle-timeout",
		"matrix32", "shard_status", "-role", "-worker-id", "-shard-cells",
		"-lease-ttl", "-poll",
		"unauthorized", "quota_exceeded", "X-API-Key", "Bearer", "eps",
		"dataset_id", "dataset_version", "/v1/datasets",
		"cells_computed", "cells_reused",
	},
	"docs/operations.md": {
		"cvcpd_jobs_submitted_total", "cvcpd_jobs_rejected_total",
		"cvcpd_jobs_completed_total", "cvcpd_job_duration_seconds",
		"cvcpd_limiter_wait_seconds", "cvcpd_runcache_hits_total",
		"cvcpd_wal_fsync_seconds", "cvcpd_store_compactions_total",
		"cvcpd_shard_leases_total", "cvcpd_shard_reclaims_total",
		"cvcpd_heartbeat_renewals_total",
		"cvcpd_cellcache_hits_total", "cvcpd_cellcache_misses_total",
		"cvcpd_cellcache_writes_total", "cvcpd_cellcache_write_failures_total",
		"cvcpd_reselect_cells_dirty_total", "cvcpd_reselect_cells_reused_total",
		"cvcpd_dataset_version", "cvcpd_dataset_cells_swept_total",
		"-metrics", "-pprof-addr", "-api-keys",
		"max_queued", "Authorization: Bearer", "/debug/pprof/",
	},
	"docs/architecture.md": {
		"Select", "Spec", "Grid", "Supervision", "Scorer",
		"EventLog", "Last-Event-ID",
		"coordinator", "dist.Worker", "lease", "epoch", "Float64bits",
		"Versioned", "RowBatch", "StableFold", "ScoreCache",
	},
	"docs/static-analysis.md": {
		"mapiter", "nondeterm", "lockio", "fpreduce", "metricreg",
		"cvcplint:ignore", "cmd/cvcplint", "staticcheck.conf",
		"internal/analysis", "analysistest", "TestLintRepoWide",
	},
	"docs/performance.md": {
		"Dist4", "SqDist4", "Pack4", "NewDistMatrixNaive", "RowInto",
		"Matrix32", "RunWithEps", "kthSmallest", "BENCH_v5.json",
		"bench-smoke", "benchjson",
	},
	"BENCH_v5.json": {
		"schema", "git_sha", "ns_per_op", "allocs_per_op",
		"selection_wall_ns", "speedup_vs_baseline",
	},
}

func TestDocsReferences(t *testing.T) {
	flags := declaredFlags(t)
	for file, names := range requiredAPIDocs {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, name := range names {
			if !strings.Contains(string(raw), name) {
				t.Errorf("%s no longer mentions %q — update the docs for the current API", file, name)
			}
		}
	}
	for _, file := range docFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		text := stripFences(string(raw))

		// Relative markdown links must point at existing files. Links are
		// resolved from the linking file's directory.
		for _, m := range mdLinkRE.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not exist", file, target)
			}
		}

		// Inline code spans: flag tokens must be declared by some command
		// (or belong to the go tool), path tokens must exist on disk.
		for _, m := range inlineCodeRE.FindAllStringSubmatch(text, -1) {
			for _, tok := range strings.Fields(m[1]) {
				tok = strings.Trim(tok, "[](),;:")
				switch {
				case flagTokenRE.MatchString(tok):
					name := strings.TrimPrefix(tok, "-")
					if !flags[name] && !goToolFlags[name] {
						t.Errorf("%s mentions flag %q, declared by no command in cmd/", file, tok)
					}
				case pathTokenRE.MatchString(tok):
					probe := strings.TrimSuffix(tok, "/")
					if i := strings.IndexByte(probe, '*'); i >= 0 {
						probe = strings.TrimSuffix(probe[:i], "/") // check the globbed parent
					}
					if _, err := os.Stat(probe); err != nil {
						// Qualified names like internal/store.Store refer to
						// the package directory; retry without the symbol.
						if i := strings.LastIndexByte(probe, '.'); i >= 0 {
							if _, err := os.Stat(probe[:i]); err == nil {
								continue
							}
						}
						t.Errorf("%s mentions path %q, which does not exist", file, tok)
					}
				}
			}
		}
	}
}
