module cvcp

go 1.24
