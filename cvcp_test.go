package cvcp_test

import (
	"testing"

	root "cvcp"
	"cvcp/internal/datagen"
)

// TestEndToEndLabelScenario runs the full Scenario I pipeline on an
// ALOI-like dataset and checks that CVCP's selection produces a clustering
// at least as good as the worst parameter in the range — and, on this easy
// planted structure, a genuinely good one.
func TestEndToEndLabelScenario(t *testing.T) {
	ds := datagen.ALOI(42, 1)[0]
	r := root.NewRand(7)
	labeled := ds.SampleLabels(r, 0.10)

	sel, err := root.SelectWithLabels(root.FOSCOpticsDend{}, ds, labeled, root.DefaultMinPtsRange, root.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Scores) != len(root.DefaultMinPtsRange) {
		t.Fatalf("got %d scores, want %d", len(sel.Scores), len(root.DefaultMinPtsRange))
	}
	of := root.OverallF(sel.FinalLabels, ds.Y, nil)
	t.Logf("FOSC best MinPts=%d internal=%.3f overallF=%.3f curve=%v",
		sel.Best.Param, sel.Best.Score, of, sel.ScoreCurve())
	if of < 0.5 {
		t.Errorf("FOSC-OPTICSDend with CVCP-selected MinPts scored OverallF=%.3f on planted clusters, want >= 0.5", of)
	}
}

// TestEndToEndConstraintScenario runs the full Scenario II pipeline with
// MPCKmeans on the same dataset: CVCP should pick a k close to the planted 5
// and produce a decent clustering.
func TestEndToEndConstraintScenario(t *testing.T) {
	ds := datagen.ALOI(42, 1)[0]
	r := root.NewRand(7)
	pool := root.ConstraintPool(r, ds.Y, 0.10)
	cons := root.SampleConstraints(r, pool, 0.5)

	sel, err := root.SelectWithConstraints(root.MPCKMeans{}, ds, cons, root.KRange(2, 9), root.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	of := root.OverallF(sel.FinalLabels, ds.Y, nil)
	t.Logf("MPCK best k=%d internal=%.3f overallF=%.3f curve=%v",
		sel.Best.Param, sel.Best.Score, of, sel.ScoreCurve())
	// The planted structure has 5 classes, two of which overlap heavily, so
	// any k from 4 up can be defensible; what CVCP must deliver is a good
	// clustering, clearly better than the worst candidates (k=2 scores
	// ~0.33 here).
	if sel.Best.Param < 3 {
		t.Errorf("CVCP selected k=%d, a degenerate under-clustering", sel.Best.Param)
	}
	if of < 0.6 {
		t.Errorf("MPCKmeans with CVCP-selected k scored OverallF=%.3f, want >= 0.6", of)
	}
}
