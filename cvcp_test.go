package cvcp_test

import (
	"context"
	"testing"

	root "cvcp"
	"cvcp/internal/datagen"
)

// TestEndToEndLabelScenario runs the full Scenario I pipeline on an
// ALOI-like dataset through the unified Select API and checks that the
// selection produces a clustering at least as good as the worst parameter
// in the range — and, on this easy planted structure, a genuinely good one.
func TestEndToEndLabelScenario(t *testing.T) {
	ds := datagen.ALOI(42, 1)[0]
	r := root.NewRand(7)
	labeled := ds.SampleLabels(r, 0.10)

	res, err := root.Select(context.Background(), root.Spec{
		Dataset:     ds,
		Grid:        root.Grid{{Algorithm: root.FOSCOpticsDend{}, Params: root.DefaultMinPtsRange}},
		Supervision: root.Labels(labeled),
		Options:     root.Options{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := res.Winner
	if len(sel.Scores) != len(root.DefaultMinPtsRange) {
		t.Fatalf("got %d scores, want %d", len(sel.Scores), len(root.DefaultMinPtsRange))
	}
	of := root.OverallF(sel.FinalLabels, ds.Y, nil)
	t.Logf("FOSC best MinPts=%d internal=%.3f overallF=%.3f curve=%v",
		sel.Best.Param, sel.Best.Score, of, sel.ScoreCurve())
	if of < 0.5 {
		t.Errorf("FOSC-OPTICSDend with CVCP-selected MinPts scored OverallF=%.3f on planted clusters, want >= 0.5", of)
	}
}

// TestEndToEndConstraintScenario runs the full Scenario II pipeline with
// MPCKmeans on the same dataset: CVCP should pick a k close to the planted 5
// and produce a decent clustering.
func TestEndToEndConstraintScenario(t *testing.T) {
	ds := datagen.ALOI(42, 1)[0]
	r := root.NewRand(7)
	pool := root.ConstraintPool(r, ds.Y, 0.10)
	cons := root.SampleConstraints(r, pool, 0.5)

	res, err := root.Select(context.Background(), root.Spec{
		Dataset:     ds,
		Grid:        root.Grid{{Algorithm: root.MPCKMeans{}, Params: root.KRange(2, 9)}},
		Supervision: root.ConstraintSet(cons),
		Options:     root.Options{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	sel := res.Winner
	of := root.OverallF(sel.FinalLabels, ds.Y, nil)
	t.Logf("MPCK best k=%d internal=%.3f overallF=%.3f curve=%v",
		sel.Best.Param, sel.Best.Score, of, sel.ScoreCurve())
	// The planted structure has 5 classes, two of which overlap heavily, so
	// any k from 4 up can be defensible; what CVCP must deliver is a good
	// clustering, clearly better than the worst candidates (k=2 scores
	// ~0.33 here).
	if sel.Best.Param < 3 {
		t.Errorf("CVCP selected k=%d, a degenerate under-clustering", sel.Best.Param)
	}
	if of < 0.6 {
		t.Errorf("MPCKmeans with CVCP-selected k scored OverallF=%.3f, want >= 0.6", of)
	}
}

// TestEndToEndCrossMethod selects across all three clustering paradigms in
// one Spec: the grid runs as a single engine dispatch and the winner must
// carry the best cross-validated score under the default scorer.
func TestEndToEndCrossMethod(t *testing.T) {
	ds := datagen.ALOI(42, 1)[0]
	labeled := ds.SampleLabels(root.NewRand(7), 0.10)

	res, err := root.Select(context.Background(), root.Spec{
		Dataset: ds,
		Grid: root.Grid{
			{Algorithm: root.FOSCOpticsDend{}, Params: root.DefaultMinPtsRange},
			{Algorithm: root.MPCKMeans{}, Params: root.KRange(2, 7)},
			{Algorithm: root.COPKMeans{}, Params: root.KRange(2, 7)},
		},
		Supervision: root.Labels(labeled),
		Options:     root.Options{Seed: 3, NFolds: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCandidate) != 3 {
		t.Fatalf("got %d candidate selections, want 3", len(res.PerCandidate))
	}
	for _, sel := range res.PerCandidate {
		if sel.Best.Score > res.Winner.Best.Score {
			t.Errorf("winner %s (%.3f) beaten by %s (%.3f)",
				res.Winner.Algorithm, res.Winner.Best.Score, sel.Algorithm, sel.Best.Score)
		}
		if len(sel.FinalLabels) != ds.N() {
			t.Errorf("%s: %d final labels for %d objects", sel.Algorithm, len(sel.FinalLabels), ds.N())
		}
	}
}
